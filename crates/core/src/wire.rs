//! Cross-process sketch shipping: the versioned sketch-file format.
//!
//! §1.1's coordinator topology only becomes real once sketches cross a
//! process boundary. A **sketch file** is one JSON object:
//!
//! ```json
//! {"format": 1, "spec": { …SketchSpec… }, "state": { …AnySketch… }}
//! ```
//!
//! * `format` — the wire version ([`WIRE_FORMAT`]); loads of any other
//!   version are rejected, so a future incompatible layout fails loudly
//!   instead of mis-merging.
//! * `spec` — the full [`SketchSpec`] the sketch was built from:
//!   everything two sites must agree on for their measurements to be
//!   compatible. Shipping it alongside the state is what lets the
//!   coordinator *check* compatibility instead of trusting the sender.
//! * `state` — the [`AnySketch`] measurement itself.
//!
//! [`SketchFile::try_merge`] refuses (with a [`WireError`]) to fold files
//! whose specs differ in any field — task, `n`, ε, `k`, max weight, or
//! seed — and loading validates the state against its *declared* spec
//! (including a contained probe merge against a spec-built empty sketch),
//! so a corrupted or tampered file fails at [`SketchFile::from_json`]
//! rather than aborting a coordinator mid-merge. The CLI's
//! `sketch` / `merge` / `decode` verbs are thin shells over this module;
//! `tests/integration_wire.rs` asserts the round trip is bit-exact for
//! every task.

use crate::api::{AnySketch, MergeError, SketchAnswer, SketchSpec};
use gs_sketch::{LinearSketch, Mergeable};
use serde::{Deserialize, Serialize, Value};

/// The current sketch-file wire version.
pub const WIRE_FORMAT: u64 = 1;

/// A sketch and the spec it was built from, as shipped between processes.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchFile {
    /// The recipe both ends must agree on.
    pub spec: SketchSpec,
    /// The sketch state (the linear measurement).
    pub state: AnySketch,
}

/// Why a sketch file failed to load or merge.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The text is not valid JSON (or not the expected shape).
    Json(String),
    /// A required top-level field is missing or mistyped.
    Missing(&'static str),
    /// The file declares an unsupported wire version.
    Format {
        /// The version the file declared.
        found: u64,
    },
    /// The embedded state does not match the embedded spec (task or `n`).
    StateMismatch,
    /// Two files with different specs refused to merge.
    SpecMismatch {
        /// Spec of the file merged into.
        left: Box<SketchSpec>,
        /// Spec of the file merged from.
        right: Box<SketchSpec>,
    },
    /// The states themselves refused to merge.
    Merge(MergeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "malformed sketch file: {e}"),
            WireError::Missing(field) => write!(f, "sketch file is missing {field:?}"),
            WireError::Format { found } => write!(
                f,
                "sketch file declares wire format {found}, this build reads format {WIRE_FORMAT}"
            ),
            WireError::StateMismatch => {
                write!(f, "sketch state does not match the file's spec")
            }
            WireError::SpecMismatch { left, right } => write!(
                f,
                "sketch specs differ (left {left:?}, right {right:?}); only sketches built \
                 from identical specs measure the same projection"
            ),
            WireError::Merge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<MergeError> for WireError {
    fn from(e: MergeError) -> Self {
        WireError::Merge(e)
    }
}

/// `true` iff `state` merges cleanly into a freshly spec-built empty
/// sketch. The per-sketch merge assertions (seeds, parameters, cell
/// counts) are the source of truth for compatibility, so a file whose
/// declared spec was tampered with — e.g. its seed edited to match a merge
/// partner — is caught at load time instead of aborting a coordinator
/// later. The probe is contained with `catch_unwind` (the sketches expose
/// no fallible compatibility API, so the asserting merge is the only
/// generic oracle) and requires the default unwinding panic runtime —
/// under `panic = "abort"` a corrupted state aborts the load instead of
/// returning an error.
fn probe_merges(spec: &SketchSpec, state: &AnySketch) -> bool {
    use std::panic;
    use std::sync::Mutex;
    // Rejecting a bad file is this probe's *expected* failure mode, so the
    // global panic hook is silenced for its duration — a rejection yields
    // one clean `WireError`, not a panic report. The gate serializes
    // concurrent loads; an unrelated panic elsewhere in the process during
    // this window loses only its hook output, not its unwind.
    static HOOK_GATE: Mutex<()> = Mutex::new(());
    let _gate = HOOK_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let ok = panic::catch_unwind(panic::AssertUnwindSafe(|| {
        let mut probe = spec.build();
        probe.merge(state);
    }))
    .is_ok();
    panic::set_hook(prev);
    ok
}

impl SketchFile {
    /// Packages a sketch with its spec, checking that the state really is
    /// what the spec describes (same task, same `n`). Deep seed/parameter
    /// consistency is probed at the untrusted boundary,
    /// [`SketchFile::from_json`], not here — `new` is the trusted path for
    /// states the caller just built from `spec`.
    pub fn new(spec: SketchSpec, state: AnySketch) -> Result<Self, WireError> {
        if state.task() != spec.task || LinearSketch::n(&state) != spec.n {
            return Err(WireError::StateMismatch);
        }
        Ok(SketchFile { spec, state })
    }

    /// Serializes the file as one JSON object (`format` / `spec` /
    /// `state`).
    pub fn to_json(&self) -> String {
        Value::Map(vec![
            ("format".into(), Value::UInt(WIRE_FORMAT)),
            ("spec".into(), self.spec.to_value()),
            ("state".into(), self.state.to_value()),
        ])
        .to_json()
    }

    /// Parses and validates a sketch file: JSON shape, wire version, spec,
    /// state, and spec↔state consistency.
    pub fn from_json(text: &str) -> Result<Self, WireError> {
        let v = Value::from_json(text).map_err(|e| WireError::Json(e.to_string()))?;
        let format = v
            .get("format")
            .and_then(Value::as_u64)
            .ok_or(WireError::Missing("format"))?;
        if format != WIRE_FORMAT {
            return Err(WireError::Format { found: format });
        }
        let spec = SketchSpec::from_value(v.get("spec").ok_or(WireError::Missing("spec"))?)
            .map_err(|e| WireError::Json(e.to_string()))?;
        let state = AnySketch::from_value(v.get("state").ok_or(WireError::Missing("state"))?)
            .map_err(|e| WireError::Json(e.to_string()))?;
        let file = SketchFile::new(spec, state)?;
        // Untrusted input: verify the state really measures the projection
        // the file *declares* before any coordinator merges it.
        if !probe_merges(&file.spec, &file.state) {
            return Err(WireError::StateMismatch);
        }
        Ok(file)
    }

    /// Folds another site's sketch file into this one. Refuses unless the
    /// specs are identical in every field — the precondition under which
    /// the state merge is infallible and exact.
    pub fn try_merge(&mut self, other: &SketchFile) -> Result<(), WireError> {
        if self.spec != other.spec {
            return Err(WireError::SpecMismatch {
                left: Box::new(self.spec),
                right: Box::new(other.spec),
            });
        }
        self.state.try_merge(&other.state)?;
        Ok(())
    }

    /// Decodes the carried sketch.
    pub fn decode(&self) -> SketchAnswer {
        self.state.decode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SketchTask;
    use gs_sketch::EdgeUpdate;

    fn fed(spec: &SketchSpec, ups: &[EdgeUpdate]) -> AnySketch {
        let mut s = spec.build();
        s.absorb(ups);
        s
    }

    #[test]
    fn file_round_trips_bit_for_bit() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(3);
        let state = fed(&spec, &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(2, 3)]);
        let file = SketchFile::new(spec, state).unwrap();
        let back = SketchFile::from_json(&file.to_json()).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let spec = SketchSpec::new(SketchTask::Bipartite, 4);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let bumped = file.to_json().replacen("\"format\":1", "\"format\":2", 1);
        assert_eq!(
            SketchFile::from_json(&bumped),
            Err(WireError::Format { found: 2 })
        );
    }

    #[test]
    fn missing_fields_are_named() {
        assert_eq!(
            SketchFile::from_json("{}"),
            Err(WireError::Missing("format"))
        );
        assert_eq!(
            SketchFile::from_json("{\"format\":1}"),
            Err(WireError::Missing("spec"))
        );
        assert!(SketchFile::from_json("not json").is_err());
    }

    #[test]
    fn tampered_spec_seed_is_caught_at_load() {
        // Editing a file's declared seed to match a merge partner must not
        // smuggle an incompatible state past the spec check into the
        // panicking inner merge: load validates state against spec.
        let spec = SketchSpec::new(SketchTask::Connectivity, 6).with_seed(8);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let tampered = file.to_json().replacen("\"seed\":8", "\"seed\":7", 1);
        assert!(tampered.contains("\"seed\":7"), "spec seed was rewritten");
        assert_eq!(
            SketchFile::from_json(&tampered),
            Err(WireError::StateMismatch)
        );
    }

    #[test]
    fn state_spec_disagreement_is_rejected() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8);
        let other = SketchSpec::new(SketchTask::Bipartite, 8);
        assert_eq!(
            SketchFile::new(spec, other.build()),
            Err(WireError::StateMismatch)
        );
        // Same task, different n: also not what the spec describes.
        let small = SketchSpec::new(SketchTask::Connectivity, 4);
        assert_eq!(
            SketchFile::new(spec, small.build()),
            Err(WireError::StateMismatch)
        );
    }

    #[test]
    fn mismatched_specs_refuse_to_merge() {
        let a_spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(1);
        let b_spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(2);
        let mut a = SketchFile::new(a_spec, a_spec.build()).unwrap();
        let b = SketchFile::new(b_spec, b_spec.build()).unwrap();
        assert!(matches!(
            a.try_merge(&b),
            Err(WireError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn merging_equal_specs_is_the_linear_merge() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(5);
        let first = vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 2)];
        let second = vec![EdgeUpdate::insert(2, 3), EdgeUpdate::delete(0, 1)];
        let mut a = SketchFile::new(spec, fed(&spec, &first)).unwrap();
        let b = SketchFile::new(spec, fed(&spec, &second)).unwrap();
        a.try_merge(&b).unwrap();
        let whole: Vec<EdgeUpdate> = first.into_iter().chain(second).collect();
        assert_eq!(a.state, fed(&spec, &whole));
    }
}
