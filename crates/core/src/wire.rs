//! Cross-process sketch shipping: the versioned sketch-file formats.
//!
//! §1.1's coordinator topology only becomes real once sketches cross a
//! process boundary. Two on-disk formats carry a sketch, auto-detected on
//! load by [`SketchFile::from_bytes`]:
//!
//! **Format 1 (JSON)** — one JSON object:
//!
//! ```json
//! {"format": 1, "spec": { …SketchSpec… }, "state": { …AnySketch… }}
//! ```
//!
//! **Format 2 (binary)** — a length-prefixed little-endian dump of the
//! measurement state. A sketch's *structure* (hashes, seeds, parameters)
//! is fully derivable from its spec, so only the [`gs_sketch::CellBank`]
//! lanes and the `k-RECOVERY` verification fingerprints ship; the reader
//! rebuilds the structure with `spec.build()` and overlays the state,
//! checking each bank's declared `reps × levels × slots` geometry against
//! the spec-built receiver:
//!
//! ```text
//! magic "AGMSKB2\n" · u32 version=2 · u32 spec_len · spec JSON
//! u32 bank_count · per bank: u32×3 geometry, then w (i64), s (i128),
//!                            f (u64 < 2^61−1) lanes, all LE
//! u32 fingerprint_count · fingerprints (u64 LE)
//! ```
//!
//! In both formats the file carries the full [`SketchSpec`] — everything
//! two sites must agree on for their measurements to be compatible —
//! so the coordinator *checks* compatibility instead of trusting the
//! sender. [`SketchFile::try_merge`] refuses (with a [`WireError`]) to
//! fold files whose specs differ in any field or whose bank geometries
//! disagree, and loading validates the state against its *declared* spec
//! (v1: a contained probe merge against a spec-built empty sketch, which
//! also re-structures the flat-deserialized banks; v2: the per-bank
//! geometry gate), so a corrupted or tampered file fails at load rather
//! than aborting a coordinator mid-merge. The CLI's
//! `sketch` / `merge` / `decode` verbs are thin shells over this module;
//! `tests/integration_wire.rs` and `tests/integration_wire_v2.rs` assert
//! both round trips are bit-exact for every task.

use crate::api::{AnySketch, MergeError, SketchAnswer, SketchSpec};
use gs_field::{m61, M61};
use gs_sketch::bank::CellBanked;
use gs_sketch::{BankGeometry, LinearSketch, Mergeable};
use serde::{Deserialize, Serialize, Value};

/// The JSON sketch-file wire version.
pub const WIRE_FORMAT: u64 = 1;

/// The binary sketch-file wire version.
pub const WIRE_FORMAT_V2: u32 = 2;

/// Magic prefix of a binary (format 2) sketch file. Starts with a byte
/// that can never open a JSON document, so the two formats are sniffable.
pub const V2_MAGIC: &[u8; 8] = b"AGMSKB2\n";

/// A sketch and the spec it was built from, as shipped between processes.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchFile {
    /// The recipe both ends must agree on.
    pub spec: SketchSpec,
    /// The sketch state (the linear measurement).
    pub state: AnySketch,
}

/// Why a sketch file failed to load or merge.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The text is not valid JSON (or not the expected shape).
    Json(String),
    /// A required top-level field is missing or mistyped.
    Missing(&'static str),
    /// The file declares an unsupported wire version.
    Format {
        /// The version the file declared.
        found: u64,
    },
    /// The bytes are neither a binary sketch file (no recognizable magic)
    /// nor JSON text.
    BadMagic,
    /// A binary file ended before its declared contents.
    Truncated {
        /// Byte offset at which the reader ran out of input.
        at: usize,
    },
    /// A binary file's bank geometry disagrees with the spec-built sketch.
    Geometry {
        /// Zero-based index of the offending bank.
        bank: usize,
        /// Geometry declared in the file.
        declared: BankGeometry,
        /// Geometry the spec builds.
        expected: BankGeometry,
    },
    /// A binary file is structurally well-formed but carries impossible
    /// content (bad counts, out-of-field fingerprints, trailing bytes).
    Corrupt(String),
    /// The embedded state does not match the embedded spec (task or `n`).
    StateMismatch,
    /// Two files with different specs refused to merge.
    SpecMismatch {
        /// Spec of the file merged into.
        left: Box<SketchSpec>,
        /// Spec of the file merged from.
        right: Box<SketchSpec>,
    },
    /// The states themselves refused to merge.
    Merge(MergeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "malformed sketch file: {e}"),
            WireError::Missing(field) => write!(f, "sketch file is missing {field:?}"),
            WireError::Format { found } => write!(
                f,
                "sketch file declares wire format {found}, this build reads formats \
                 {WIRE_FORMAT} and {WIRE_FORMAT_V2}"
            ),
            WireError::BadMagic => write!(
                f,
                "not a sketch file: neither the binary magic nor JSON text"
            ),
            WireError::Truncated { at } => {
                write!(f, "binary sketch file truncated at byte {at}")
            }
            WireError::Geometry {
                bank,
                declared,
                expected,
            } => write!(
                f,
                "bank {bank} declares geometry {}x{}x{} but the spec builds {}x{}x{}",
                declared.reps,
                declared.levels,
                declared.slots,
                expected.reps,
                expected.levels,
                expected.slots
            ),
            WireError::Corrupt(detail) => write!(f, "corrupt binary sketch file: {detail}"),
            WireError::StateMismatch => {
                write!(f, "sketch state does not match the file's spec")
            }
            WireError::SpecMismatch { left, right } => write!(
                f,
                "sketch specs differ (left {left:?}, right {right:?}); only sketches built \
                 from identical specs measure the same projection"
            ),
            WireError::Merge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<MergeError> for WireError {
    fn from(e: MergeError) -> Self {
        WireError::Merge(e)
    }
}

/// Merges `state` into a freshly spec-built empty sketch and returns the
/// result, or `None` if the merge refuses. The per-sketch merge assertions
/// (seeds, parameters, cell counts) are the source of truth for
/// compatibility, so a file whose declared spec was tampered with — e.g.
/// its seed edited to match a merge partner — is caught at load time
/// instead of aborting a coordinator later. Because an empty sketch is the
/// zero of the merge group, the returned sketch carries exactly the
/// state's measurements **in the spec-built structure** — this is also
/// what re-attaches the `reps × levels × slots` bank geometry that the
/// legacy JSON cell arrays do not record. The probe is contained with
/// `catch_unwind` (the sketches expose no fallible compatibility API, so
/// the asserting merge is the only generic oracle) and requires the
/// default unwinding panic runtime — under `panic = "abort"` a corrupted
/// state aborts the load instead of returning an error.
fn rebuild_from_spec(spec: &SketchSpec, state: &AnySketch) -> Option<AnySketch> {
    contained(|| {
        let mut probe = spec.build();
        probe.merge(state);
        probe
    })
}

/// Runs `f`, converting a panic into `None`. Loading untrusted files is
/// the one place a panic is an *expected* failure mode (the sketch
/// constructors and merges assert rather than return errors), so the
/// global panic hook is silenced for the call's duration — a rejection
/// yields one clean [`WireError`], not a panic report. The gate serializes
/// concurrent loads; an unrelated panic elsewhere in the process during
/// this window loses only its hook output, not its unwind. Requires the
/// default unwinding panic runtime — under `panic = "abort"` a corrupted
/// file aborts the load instead of returning an error.
fn contained<R>(f: impl FnOnce() -> R) -> Option<R> {
    use std::panic;
    use std::sync::Mutex;
    static HOOK_GATE: Mutex<()> = Mutex::new(());
    let _gate = HOOK_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = panic::catch_unwind(panic::AssertUnwindSafe(f)).ok();
    panic::set_hook(prev);
    out
}

impl SketchFile {
    /// Packages a sketch with its spec, checking that the state really is
    /// what the spec describes (same task, same `n`). Deep seed/parameter
    /// consistency is probed at the untrusted boundary,
    /// [`SketchFile::from_json`], not here — `new` is the trusted path for
    /// states the caller just built from `spec`.
    pub fn new(spec: SketchSpec, state: AnySketch) -> Result<Self, WireError> {
        if state.task() != spec.task || LinearSketch::n(&state) != spec.n {
            return Err(WireError::StateMismatch);
        }
        Ok(SketchFile { spec, state })
    }

    /// Serializes the file as one JSON object (`format` / `spec` /
    /// `state`).
    pub fn to_json(&self) -> String {
        Value::Map(vec![
            ("format".into(), Value::UInt(WIRE_FORMAT)),
            ("spec".into(), self.spec.to_value()),
            ("state".into(), self.state.to_value()),
        ])
        .to_json()
    }

    /// Parses and validates a sketch file: JSON shape, wire version, spec,
    /// state, and spec↔state consistency. The returned state is the
    /// declared measurements transplanted into a spec-built sketch, so its
    /// bank geometry is fully structured regardless of the serialized
    /// form.
    pub fn from_json(text: &str) -> Result<Self, WireError> {
        let v = Value::from_json(text).map_err(|e| WireError::Json(e.to_string()))?;
        let format = v
            .get("format")
            .and_then(Value::as_u64)
            .ok_or(WireError::Missing("format"))?;
        if format != WIRE_FORMAT {
            return Err(WireError::Format { found: format });
        }
        let spec = SketchSpec::from_value(v.get("spec").ok_or(WireError::Missing("spec"))?)
            .map_err(|e| WireError::Json(e.to_string()))?;
        let state = AnySketch::from_value(v.get("state").ok_or(WireError::Missing("state"))?)
            .map_err(|e| WireError::Json(e.to_string()))?;
        let file = SketchFile::new(spec, state)?;
        // Untrusted input: verify the state really measures the projection
        // the file *declares* before any coordinator merges it, and keep
        // the spec-built rebuild (same measurements, structured geometry).
        let rebuilt = rebuild_from_spec(&file.spec, &file.state).ok_or(WireError::StateMismatch)?;
        Ok(SketchFile {
            spec: file.spec,
            state: rebuilt,
        })
    }

    /// Serializes the file in the binary wire format (v2): the spec
    /// header, then the raw bank lanes and fingerprints, little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(V2_MAGIC);
        write_u32(&mut out, WIRE_FORMAT_V2);
        let spec_json = self.spec.to_json();
        write_u32(&mut out, spec_json.len() as u32);
        out.extend_from_slice(spec_json.as_bytes());
        let banks = self.state.banks();
        write_u32(&mut out, banks.len() as u32);
        for bank in banks {
            let geom = bank.geometry();
            write_u32(&mut out, geom.reps as u32);
            write_u32(&mut out, geom.levels as u32);
            write_u32(&mut out, geom.slots as u32);
            let (w, s, f) = bank.lanes();
            for &x in w {
                out.extend_from_slice(&x.to_le_bytes());
            }
            for &x in s {
                out.extend_from_slice(&x.to_le_bytes());
            }
            for &x in f {
                out.extend_from_slice(&x.value().to_le_bytes());
            }
        }
        let fps = self.state.fingerprints();
        write_u32(&mut out, fps.len() as u32);
        for fp in fps {
            out.extend_from_slice(&fp.value().to_le_bytes());
        }
        out
    }

    /// Parses a binary (v2) sketch file: magic, version, spec header, then
    /// the bank lanes overlaid onto a spec-built sketch with per-bank
    /// geometry checks.
    pub fn from_bytes_v2(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        if r.take(V2_MAGIC.len())? != V2_MAGIC.as_slice() {
            return Err(WireError::BadMagic);
        }
        let version = r.u32()?;
        if version != WIRE_FORMAT_V2 {
            return Err(WireError::Format {
                found: version as u64,
            });
        }
        let spec_len = r.u32()? as usize;
        let spec_text = std::str::from_utf8(r.take(spec_len)?)
            .map_err(|_| WireError::Corrupt("spec header is not UTF-8".into()))?;
        let spec = SketchSpec::from_json(spec_text).map_err(|e| WireError::Json(e.to_string()))?;
        // Untrusted header: the constructors assert on out-of-range spec
        // values, so contain the build like the v1 probe.
        let mut state = contained(|| spec.build()).ok_or_else(|| {
            WireError::Corrupt("spec header describes an unconstructible sketch".into())
        })?;
        let mut banks = state.banks_mut();
        let declared_banks = r.u32()? as usize;
        if declared_banks != banks.len() {
            return Err(WireError::Corrupt(format!(
                "file declares {declared_banks} banks, the spec builds {}",
                banks.len()
            )));
        }
        for (i, bank) in banks.iter_mut().enumerate() {
            let declared = BankGeometry {
                reps: r.u32()? as usize,
                levels: r.u32()? as usize,
                slots: r.u32()? as usize,
            };
            let expected = bank.geometry();
            if declared != expected {
                return Err(WireError::Geometry {
                    bank: i,
                    declared,
                    expected,
                });
            }
            let len = declared.len();
            let mut w = Vec::with_capacity(len);
            for _ in 0..len {
                w.push(i64::from_le_bytes(r.array::<8>()?));
            }
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                s.push(i128::from_le_bytes(r.array::<16>()?));
            }
            let mut f = Vec::with_capacity(len);
            for _ in 0..len {
                f.push(read_m61(&mut r)?);
            }
            bank.overlay(w, s, f);
        }
        let declared_fps = r.u32()? as usize;
        let mut fps = state.fingerprints_mut();
        if declared_fps != fps.len() {
            return Err(WireError::Corrupt(format!(
                "file declares {declared_fps} fingerprints, the spec builds {}",
                fps.len()
            )));
        }
        for fp in fps.iter_mut() {
            **fp = read_m61(&mut r)?;
        }
        if !r.is_done() {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after the sketch state",
                r.remaining()
            )));
        }
        SketchFile::new(spec, state)
    }

    /// Loads a sketch file of either wire format, auto-detected by
    /// content: the binary magic selects format 2, anything else is
    /// treated as format-1 JSON text.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.starts_with(V2_MAGIC) {
            return Self::from_bytes_v2(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|_| WireError::BadMagic)?;
        Self::from_json(text)
    }

    /// Folds another site's sketch file into this one. Refuses unless the
    /// specs are identical in every field — the precondition under which
    /// the state merge is infallible and exact — and the bank geometries
    /// agree (they always do for equal specs; the check pins the v2
    /// contract).
    pub fn try_merge(&mut self, other: &SketchFile) -> Result<(), WireError> {
        if self.spec != other.spec {
            return Err(WireError::SpecMismatch {
                left: Box::new(self.spec),
                right: Box::new(other.spec),
            });
        }
        for (i, (a, b)) in self
            .state
            .banks()
            .iter()
            .zip(other.state.banks())
            .enumerate()
        {
            if a.geometry() != b.geometry() {
                return Err(WireError::Geometry {
                    bank: i,
                    declared: b.geometry(),
                    expected: a.geometry(),
                });
            }
        }
        self.state.try_merge(&other.state)?;
        Ok(())
    }

    /// Decodes the carried sketch.
    pub fn decode(&self) -> SketchAnswer {
        self.state.decode()
    }
}

/// Appends a little-endian u32.
fn write_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Reads one fingerprint, rejecting out-of-field values (a uniform random
/// or corrupted word is ≥ p with probability 3/4, so this also catches
/// most bit rot in the f lane).
fn read_m61(r: &mut ByteReader<'_>) -> Result<M61, WireError> {
    let raw = u64::from_le_bytes(r.array::<8>()?);
    if raw >= m61::P {
        return Err(WireError::Corrupt(format!(
            "fingerprint value {raw} outside F_(2^61-1)"
        )));
    }
    Ok(M61::new(raw))
}

/// A bounds-checked little-endian cursor over a byte slice.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Truncated { at: self.pos })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes"))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SketchTask;
    use gs_sketch::EdgeUpdate;

    fn fed(spec: &SketchSpec, ups: &[EdgeUpdate]) -> AnySketch {
        let mut s = spec.build();
        s.absorb(ups);
        s
    }

    #[test]
    fn file_round_trips_bit_for_bit() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(3);
        let state = fed(&spec, &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(2, 3)]);
        let file = SketchFile::new(spec, state).unwrap();
        let back = SketchFile::from_json(&file.to_json()).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let spec = SketchSpec::new(SketchTask::Bipartite, 4);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let bumped = file.to_json().replacen("\"format\":1", "\"format\":2", 1);
        assert_eq!(
            SketchFile::from_json(&bumped),
            Err(WireError::Format { found: 2 })
        );
    }

    #[test]
    fn missing_fields_are_named() {
        assert_eq!(
            SketchFile::from_json("{}"),
            Err(WireError::Missing("format"))
        );
        assert_eq!(
            SketchFile::from_json("{\"format\":1}"),
            Err(WireError::Missing("spec"))
        );
        assert!(SketchFile::from_json("not json").is_err());
    }

    #[test]
    fn tampered_spec_seed_is_caught_at_load() {
        // Editing a file's declared seed to match a merge partner must not
        // smuggle an incompatible state past the spec check into the
        // panicking inner merge: load validates state against spec.
        let spec = SketchSpec::new(SketchTask::Connectivity, 6).with_seed(8);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let tampered = file.to_json().replacen("\"seed\":8", "\"seed\":7", 1);
        assert!(tampered.contains("\"seed\":7"), "spec seed was rewritten");
        assert_eq!(
            SketchFile::from_json(&tampered),
            Err(WireError::StateMismatch)
        );
    }

    #[test]
    fn absurd_state_dimensions_fail_without_allocating() {
        // A tiny corrupt v1 file whose *state* declares a huge n must be
        // rejected by the shape checks, not abort the process trying to
        // allocate the declared bank.
        let spec = SketchSpec::new(SketchTask::Connectivity, 5).with_seed(3);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let tampered = file.to_json().replace("\"n\":5", "\"n\":99999999999");
        assert!(SketchFile::from_json(&tampered).is_err());
    }

    #[test]
    fn unconstructible_v2_spec_header_is_an_error_not_a_panic() {
        // Sketch constructors assert on out-of-range spec values; a v2
        // file whose header declares such a spec must fail with a
        // WireError (the build is contained like the v1 probe).
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(4);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let mut bytes = file.to_bytes();
        let at = V2_MAGIC.len() + 8;
        let spec_len = u32::from_le_bytes(bytes[at - 4..at].try_into().unwrap()) as usize;
        let header = String::from_utf8(bytes[at..at + spec_len].to_vec()).unwrap();
        // Same-length edit keeps the length prefix valid: n = 8 -> n = 1.
        let bad = header.replacen("\"n\":8", "\"n\":1", 1);
        assert_eq!(bad.len(), spec_len);
        bytes[at..at + spec_len].copy_from_slice(bad.as_bytes());
        match SketchFile::from_bytes(&bytes) {
            Err(WireError::Corrupt(detail)) => {
                assert!(detail.contains("unconstructible"), "detail: {detail}")
            }
            other => panic!("expected contained rejection, got {other:?}"),
        }
    }

    #[test]
    fn state_spec_disagreement_is_rejected() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8);
        let other = SketchSpec::new(SketchTask::Bipartite, 8);
        assert_eq!(
            SketchFile::new(spec, other.build()),
            Err(WireError::StateMismatch)
        );
        // Same task, different n: also not what the spec describes.
        let small = SketchSpec::new(SketchTask::Connectivity, 4);
        assert_eq!(
            SketchFile::new(spec, small.build()),
            Err(WireError::StateMismatch)
        );
    }

    #[test]
    fn mismatched_specs_refuse_to_merge() {
        let a_spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(1);
        let b_spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(2);
        let mut a = SketchFile::new(a_spec, a_spec.build()).unwrap();
        let b = SketchFile::new(b_spec, b_spec.build()).unwrap();
        assert!(matches!(
            a.try_merge(&b),
            Err(WireError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn merging_equal_specs_is_the_linear_merge() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(5);
        let first = vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 2)];
        let second = vec![EdgeUpdate::insert(2, 3), EdgeUpdate::delete(0, 1)];
        let mut a = SketchFile::new(spec, fed(&spec, &first)).unwrap();
        let b = SketchFile::new(spec, fed(&spec, &second)).unwrap();
        a.try_merge(&b).unwrap();
        let whole: Vec<EdgeUpdate> = first.into_iter().chain(second).collect();
        assert_eq!(a.state, fed(&spec, &whole));
    }
}
