//! Cross-process sketch shipping: the versioned sketch-file formats.
//!
//! §1.1's coordinator topology only becomes real once sketches cross a
//! process boundary. Two on-disk formats carry a sketch, auto-detected on
//! load by [`SketchFile::from_bytes`]:
//!
//! **Format 1 (JSON)** — one JSON object:
//!
//! ```json
//! {"format": 1, "spec": { …SketchSpec… }, "state": { …AnySketch… }}
//! ```
//!
//! **Format 2 (binary)** — a length-prefixed little-endian dump of the
//! measurement state. A sketch's *structure* (hashes, seeds, parameters)
//! is fully derivable from its spec, so only the [`gs_sketch::CellBank`]
//! lanes and the `k-RECOVERY` verification fingerprints ship; the reader
//! rebuilds the structure with `spec.build()` and overlays the state,
//! checking each bank's declared `reps × levels × slots` geometry against
//! the spec-built receiver:
//!
//! ```text
//! magic "AGMSKB2\n" · u32 version=3 · u32 spec_len · spec JSON
//! u32 bank_count · per bank: u32×3 geometry, then w (i64), s (i128),
//!                            f (u64 < 2^61−1) lanes, all LE
//! u32 fingerprint_count · fingerprints (u64 LE)
//! u64 FNV-1a checksum of every preceding byte
//! ```
//!
//! **Delta record** — the incremental sibling of format 2, produced by
//! [`SketchFile::delta_bytes`] and consumed by
//! [`SketchFile::apply_delta`]. Instead of whole lanes it ships only the
//! cells **touched since the last drain** (the bank dirty bitmaps of
//! [`gs_sketch::CellBank`]), as `(flat index, w, s, f)` columns per bank,
//! plus every fingerprint scalar (they are single field elements).
//! Emitting a delta *drains* the sender — touched cells and fingerprints
//! are zeroed — so by linearity a coordinator that adds successive deltas
//! holds exactly the sketch of everything the sender ever absorbed:
//!
//! ```text
//! magic "AGMSKD2\n" · u32 version=3 · u32 spec_len · spec JSON
//! u32 bank_count · per bank: u32×3 geometry, u32 touched_count,
//!                            touched flat indices (u32 LE, strictly
//!                            ascending), then w/s/f columns of exactly
//!                            those cells
//! u32 fingerprint_count · fingerprints (u64 LE)
//! u64 FNV-1a checksum of every preceding byte
//! ```
//!
//! Both binary layouts end in an [FNV-1a] checksum ([`v2_checksum`]) over
//! everything before it, verified **before any content is parsed**: a
//! flipped bit, a truncation past the header, or a spliced payload is
//! refused as [`WireError::Corrupt`] without the reader ever acting on
//! the damaged bytes — there is no silent wrong state. The structural
//! validation below the checksum (geometry gates, field-range checks,
//! strict index monotonicity, trailing-byte rejection) still runs, so a
//! *re-sealed* tampered file is caught too wherever the damage is
//! detectable.
//!
//! In all formats the payload carries the full [`SketchSpec`] —
//! everything two sites must agree on for their measurements to be
//! compatible — so the coordinator *checks* compatibility instead of
//! trusting the sender. [`SketchFile::try_merge`] refuses (with a
//! [`WireError`]) to fold files whose specs differ in any field or whose
//! bank geometries disagree, [`SketchFile::apply_delta`] refuses deltas
//! the same way, and loading validates the state against its *declared*
//! spec (v1: a contained probe merge against a spec-built empty sketch,
//! which also re-structures the flat-deserialized banks; v2: the per-bank
//! geometry gate), so a corrupted or tampered file fails at load rather
//! than aborting a coordinator mid-merge. The CLI's
//! `sketch` / `merge` / `decode` / `sync` verbs are thin shells over this
//! module; `tests/integration_wire.rs`, `tests/integration_wire_v2.rs`,
//! `tests/integration_delta.rs`, and `tests/integration_wire_fuzz.rs`
//! assert the round trips are bit-exact and the rejections are typed.
//!
//! [FNV-1a]: https://en.wikipedia.org/wiki/Fowler%E2%80%93Noll%E2%80%93Vo_hash_function

use crate::api::{AnySketch, MergeError, SketchAnswer, SketchSpec, SpecError};
use gs_field::{m61, M61};
use gs_sketch::bank::CellBanked;
use gs_sketch::par::DecodePlan;
use gs_sketch::{BankGeometry, LinearSketch, Mergeable};
use serde::{Deserialize, Serialize, Value};

/// The JSON sketch-file wire version.
pub const WIRE_FORMAT: u64 = 1;

/// The binary sketch-file wire version, carried in the `u32` after the
/// magic. Version 2 was the pre-checksum binary layout; appending the
/// trailing checksum word changed the byte layout, so the version was
/// bumped to 3 — a version-2 file written by an older build is refused
/// with a [`WireError::Format`] naming both versions, not misread as
/// checksum corruption.
pub const WIRE_FORMAT_BIN: u32 = 3;

/// Magic prefix of a binary (format 2) sketch file. Starts with a byte
/// that can never open a JSON document, so the two formats are sniffable.
pub const V2_MAGIC: &[u8; 8] = b"AGMSKB2\n";

/// Magic prefix of a binary delta record (the incremental sibling of
/// format 2): `D` for delta where the full dump has `B`.
pub const DELTA_MAGIC: &[u8; 8] = b"AGMSKD2\n";

/// The FNV-1a 64-bit checksum both binary layouts carry as their final
/// word, computed over every preceding byte. Public so external tools
/// (and the corruption tests) can re-seal a payload they have edited.
pub fn v2_checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the [`v2_checksum`] of everything written so far.
fn seal(out: &mut Vec<u8>) {
    let sum = v2_checksum(out);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Reads the `u32` wire version that follows an 8-byte magic and rejects
/// anything but [`WIRE_FORMAT_BIN`] (the version is checked before the
/// checksum so a future-format file reports [`WireError::Format`], not a
/// hash mismatch).
fn check_version(bytes: &[u8]) -> Result<(), WireError> {
    let at = V2_MAGIC.len();
    let word = bytes
        .get(at..at + 4)
        .and_then(|w| <[u8; 4]>::try_from(w).ok())
        .ok_or(WireError::Truncated { at: bytes.len() })?;
    let version = u32::from_le_bytes(word);
    if version != WIRE_FORMAT_BIN {
        return Err(WireError::Format {
            found: version as u64,
        });
    }
    Ok(())
}

/// Parses the prologue shared by both binary layouts: the expected magic
/// ([`WireError::BadMagic`] otherwise), the version word, the trailing
/// checksum (verified before any content is read), then the spec header.
/// Returns the spec and a reader positioned at the first byte after it.
fn parse_binary_header<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
) -> Result<(SketchSpec, ByteReader<'a>), WireError> {
    if !bytes.starts_with(magic) {
        return Err(WireError::BadMagic);
    }
    check_version(bytes)?;
    let mut r = ByteReader::new(checked_content(bytes)?);
    let spec_len = r.u32()? as usize;
    let spec_text = std::str::from_utf8(r.take(spec_len)?)
        .map_err(|_| WireError::Corrupt("spec header is not UTF-8".into()))?;
    let spec = SketchSpec::from_json(spec_text).map_err(|e| WireError::Json(e.to_string()))?;
    Ok((spec, r))
}

/// Verifies the trailing checksum of a binary payload (full or delta) and
/// returns the content slice between the `magic · u32 version` header and
/// the checksum word. Runs before any content is parsed.
fn checked_content(bytes: &[u8]) -> Result<&[u8], WireError> {
    let header = V2_MAGIC.len() + 4;
    if bytes.len() < header + 8 {
        return Err(WireError::Truncated { at: bytes.len() });
    }
    let (hashed, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(
        tail.try_into()
            .map_err(|_| WireError::Truncated { at: bytes.len() })?,
    );
    let computed = v2_checksum(hashed);
    if declared != computed {
        return Err(WireError::Corrupt(format!(
            "checksum mismatch: file declares {declared:#018x}, contents hash to \
             {computed:#018x}"
        )));
    }
    hashed
        .get(header..)
        .ok_or(WireError::Truncated { at: bytes.len() })
}

/// A sketch and the spec it was built from, as shipped between processes.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchFile {
    /// The recipe both ends must agree on.
    pub spec: SketchSpec,
    /// The sketch state (the linear measurement).
    pub state: AnySketch,
}

/// Why a sketch file failed to load or merge.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The text is not valid JSON (or not the expected shape).
    Json(String),
    /// A required top-level field is missing or mistyped.
    Missing(&'static str),
    /// The file declares an unsupported wire version.
    Format {
        /// The version the file declared.
        found: u64,
    },
    /// The bytes are neither a binary sketch file (no recognizable magic)
    /// nor JSON text.
    BadMagic,
    /// A binary file ended before its declared contents.
    Truncated {
        /// Byte offset at which the reader ran out of input.
        at: usize,
    },
    /// A binary file's bank geometry disagrees with the spec-built sketch.
    Geometry {
        /// Zero-based index of the offending bank.
        bank: usize,
        /// Geometry declared in the file.
        declared: BankGeometry,
        /// Geometry the spec builds.
        expected: BankGeometry,
    },
    /// A binary file is structurally well-formed but carries impossible
    /// content (bad counts, out-of-field fingerprints, trailing bytes).
    Corrupt(String),
    /// The declared spec violates its task's constructor invariants or
    /// the documented plausibility floors of [`SketchSpec::validate`] (a
    /// degenerate or hostile header, refused before anything is built).
    /// The floors are deliberately part of the wire contract: an extreme
    /// but technically-constructible spec (`ε` near zero, astronomically
    /// large `k` or weights) is indistinguishable from an
    /// allocation-exhaustion attack at load time.
    Spec(SpecError),
    /// The embedded state does not match the embedded spec (task or `n`).
    StateMismatch,
    /// Two files with different specs refused to merge.
    SpecMismatch {
        /// Spec of the file merged into.
        left: Box<SketchSpec>,
        /// Spec of the file merged from.
        right: Box<SketchSpec>,
    },
    /// The states themselves refused to merge.
    Merge(MergeError),
    /// A file or delta carries a cell value outside the receiving bank's
    /// spec-derived lane range (the lane-compaction bound of
    /// `LaneWidth::for_bounds`). The wire always ships `s` as 16-byte
    /// words; a narrow bank range-checks them on import and refuses the
    /// whole record rather than wrapping silently.
    LaneRange {
        /// Zero-based index of the offending bank.
        bank: usize,
        /// Flat cell index of the first out-of-range value, when known.
        cell: Option<usize>,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "malformed sketch file: {e}"),
            WireError::Missing(field) => write!(f, "sketch file is missing {field:?}"),
            WireError::Format { found } => write!(
                f,
                "sketch file declares wire format {found}, this build reads formats \
                 {WIRE_FORMAT} and {WIRE_FORMAT_BIN}"
            ),
            WireError::BadMagic => write!(
                f,
                "not a sketch file: neither the binary magic nor JSON text"
            ),
            WireError::Truncated { at } => {
                write!(f, "binary sketch file truncated at byte {at}")
            }
            WireError::Geometry {
                bank,
                declared,
                expected,
            } => write!(
                f,
                "bank {bank} declares geometry {}x{}x{} but the spec builds {}x{}x{}",
                declared.reps,
                declared.levels,
                declared.slots,
                expected.reps,
                expected.levels,
                expected.slots
            ),
            WireError::Corrupt(detail) => write!(f, "corrupt binary sketch file: {detail}"),
            WireError::Spec(e) => {
                write!(
                    f,
                    "sketch file spec refused (outside this build's accepted ranges): {e}"
                )
            }
            WireError::StateMismatch => {
                write!(f, "sketch state does not match the file's spec")
            }
            WireError::SpecMismatch { left, right } => write!(
                f,
                "sketch specs differ (left {left:?}, right {right:?}); only sketches built \
                 from identical specs measure the same projection"
            ),
            WireError::Merge(e) => write!(f, "{e}"),
            WireError::LaneRange { bank, cell } => match cell {
                Some(cell) => write!(
                    f,
                    "bank {bank} cell {cell} carries a value outside the receiving \
                     sketch's compacted lane range"
                ),
                None => write!(
                    f,
                    "bank {bank} carries a value outside the receiving sketch's \
                     compacted lane range"
                ),
            },
        }
    }
}

impl std::error::Error for WireError {}

impl From<MergeError> for WireError {
    fn from(e: MergeError) -> Self {
        WireError::Merge(e)
    }
}

impl From<SpecError> for WireError {
    fn from(e: SpecError) -> Self {
        WireError::Spec(e)
    }
}

/// Merges `state` into a freshly spec-built empty sketch and returns the
/// result, or `None` if the merge refuses. The per-sketch merge assertions
/// (seeds, parameters, cell counts) are the source of truth for
/// compatibility, so a file whose declared spec was tampered with — e.g.
/// its seed edited to match a merge partner — is caught at load time
/// instead of aborting a coordinator later. Because an empty sketch is the
/// zero of the merge group, the returned sketch carries exactly the
/// state's measurements **in the spec-built structure** — this is also
/// what re-attaches the `reps × levels × slots` bank geometry that the
/// legacy JSON cell arrays do not record. The probe is contained with
/// `catch_unwind` (the sketches expose no fallible compatibility API, so
/// the asserting merge is the only generic oracle) and requires the
/// default unwinding panic runtime — under `panic = "abort"` a corrupted
/// state aborts the load instead of returning an error.
fn rebuild_from_spec(spec: &SketchSpec, state: &AnySketch) -> Option<AnySketch> {
    contained(|| {
        let mut probe = spec.build();
        probe.merge(state);
        probe
    })
}

/// Runs `f`, converting a panic into `None`. Loading untrusted files is
/// the one place a panic is an *expected* failure mode (the sketch
/// constructors and merges assert rather than return errors), so the
/// global panic hook is silenced for the call's duration — a rejection
/// yields one clean [`WireError`], not a panic report. The gate serializes
/// concurrent loads; an unrelated panic elsewhere in the process during
/// this window loses only its hook output, not its unwind. Requires the
/// default unwinding panic runtime — under `panic = "abort"` a corrupted
/// file aborts the load instead of returning an error.
fn contained<R>(f: impl FnOnce() -> R) -> Option<R> {
    use std::panic;
    use std::sync::Mutex;
    static HOOK_GATE: Mutex<()> = Mutex::new(());
    let _gate = HOOK_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = panic::catch_unwind(panic::AssertUnwindSafe(f)).ok();
    panic::set_hook(prev);
    out
}

impl SketchFile {
    /// Packages a sketch with its spec, checking that the state really is
    /// what the spec describes (same task, same `n`). Deep seed/parameter
    /// consistency is probed at the untrusted boundary,
    /// [`SketchFile::from_json`], not here — `new` is the trusted path for
    /// states the caller just built from `spec`.
    pub fn new(spec: SketchSpec, state: AnySketch) -> Result<Self, WireError> {
        if state.task() != spec.task || LinearSketch::n(&state) != spec.n {
            return Err(WireError::StateMismatch);
        }
        Ok(SketchFile { spec, state })
    }

    /// Serializes the file as one JSON object (`format` / `spec` /
    /// `state`).
    pub fn to_json(&self) -> String {
        Value::Map(vec![
            ("format".into(), Value::UInt(WIRE_FORMAT)),
            ("spec".into(), self.spec.to_value()),
            ("state".into(), self.state.to_value()),
        ])
        .to_json()
    }

    /// Parses and validates a sketch file: JSON shape, wire version, spec,
    /// state, and spec↔state consistency. The returned state is the
    /// declared measurements transplanted into a spec-built sketch, so its
    /// bank geometry is fully structured regardless of the serialized
    /// form.
    pub fn from_json(text: &str) -> Result<Self, WireError> {
        let v = Value::from_json(text).map_err(|e| WireError::Json(e.to_string()))?;
        let format = v
            .get("format")
            .and_then(Value::as_u64)
            .ok_or(WireError::Missing("format"))?;
        if format != WIRE_FORMAT {
            return Err(WireError::Format { found: format });
        }
        let spec = SketchSpec::from_value(v.get("spec").ok_or(WireError::Missing("spec"))?)
            .map_err(|e| WireError::Json(e.to_string()))?;
        // Untrusted header: a degenerate spec is refused with a typed
        // error before the probe merge builds anything from it.
        spec.validate()?;
        let state = AnySketch::from_value(v.get("state").ok_or(WireError::Missing("state"))?)
            .map_err(|e| WireError::Json(e.to_string()))?;
        let file = SketchFile::new(spec, state)?;
        // Untrusted input: verify the state really measures the projection
        // the file *declares* before any coordinator merges it, and keep
        // the spec-built rebuild (same measurements, structured geometry).
        let rebuilt = rebuild_from_spec(&file.spec, &file.state).ok_or(WireError::StateMismatch)?;
        // The rebuild merges the declared values into the spec-built
        // sketch; a value outside a compacted lane's range poisons the
        // receiving bank there, which surfaces here as a typed refusal
        // (the JSON format predates lane compaction, so this is the only
        // place the legacy path can range-check).
        if let Some((bank, e)) = rebuilt
            .banks()
            .iter()
            .enumerate()
            .find_map(|(i, b)| b.lane_overflow().map(|e| (i, e)))
        {
            return Err(WireError::LaneRange { bank, cell: e.cell });
        }
        Ok(SketchFile {
            spec: file.spec,
            state: rebuilt,
        })
    }

    /// Serializes the file in the binary wire format (v2): the spec
    /// header, then the raw bank lanes and fingerprints, little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(V2_MAGIC);
        write_u32(&mut out, WIRE_FORMAT_BIN);
        let spec_json = self.spec.to_json();
        write_u32(&mut out, spec_json.len() as u32);
        out.extend_from_slice(spec_json.as_bytes());
        let banks = self.state.banks();
        write_u32(&mut out, banks.len() as u32);
        for bank in banks {
            // Geometry axes ride as u32 (same invariant delta_bytes
            // guards): a larger bank would truncate silently into a
            // checksum-valid but unloadable file, so refuse loudly.
            // gs-lint: allow(no-panic-paths, "encode-side bound on this process's own bank geometry; no wire bytes are parsed here")
            assert!(
                bank.len() <= u32::MAX as usize,
                "the binary format sizes banks as u32, bank holds {} cells",
                bank.len()
            );
            let geom = bank.geometry();
            write_u32(&mut out, geom.reps as u32);
            write_u32(&mut out, geom.levels as u32);
            write_u32(&mut out, geom.slots as u32);
            for &x in bank.w_lane() {
                out.extend_from_slice(&x.to_le_bytes());
            }
            // The wire always ships `s` as 16-byte words: a narrow
            // (i64-lane) bank widens here, so compaction never leaks
            // into the format and old readers stay byte-compatible.
            let s = bank.s_lane();
            for i in 0..bank.len() {
                out.extend_from_slice(&s.get(i).to_le_bytes());
            }
            for &x in bank.f_lane() {
                out.extend_from_slice(&x.value().to_le_bytes());
            }
        }
        let fps = self.state.fingerprints();
        write_u32(&mut out, fps.len() as u32);
        for fp in fps {
            out.extend_from_slice(&fp.value().to_le_bytes());
        }
        seal(&mut out);
        out
    }

    /// Parses a binary (v2) sketch file: magic, version, the trailing
    /// checksum (verified before anything else is read), then the spec
    /// header and the bank lanes overlaid onto a spec-built sketch with
    /// per-bank geometry checks.
    pub fn from_bytes_v2(bytes: &[u8]) -> Result<Self, WireError> {
        let (spec, mut r) = parse_binary_header(bytes, V2_MAGIC)?;
        // Untrusted header: refuse degenerate specs with a typed error,
        // and contain the build (the constructors assert) for anything
        // validation cannot express.
        spec.validate()?;
        let mut state = contained(|| spec.build()).ok_or_else(|| {
            WireError::Corrupt("spec header describes an unconstructible sketch".into())
        })?;
        let mut banks = state.banks_mut();
        let declared_banks = r.u32()? as usize;
        if declared_banks != banks.len() {
            return Err(WireError::Corrupt(format!(
                "file declares {declared_banks} banks, the spec builds {}",
                banks.len()
            )));
        }
        for (i, bank) in banks.iter_mut().enumerate() {
            let declared = BankGeometry {
                reps: r.u32()? as usize,
                levels: r.u32()? as usize,
                slots: r.u32()? as usize,
            };
            let expected = bank.geometry();
            if declared != expected {
                return Err(WireError::Geometry {
                    bank: i,
                    declared,
                    expected,
                });
            }
            // Capacity is capped by what the file can physically still
            // carry (the delta reader's rule): a hostile or truncated
            // header must not force an allocation the payload never
            // backs — the reads below fail with `Truncated` first.
            let len = declared.len();
            let mut w = Vec::with_capacity(len.min(r.remaining() / 8 + 1));
            for _ in 0..len {
                w.push(i64::from_le_bytes(r.array::<8>()?));
            }
            let mut s = Vec::with_capacity(len.min(r.remaining() / 16 + 1));
            for _ in 0..len {
                s.push(i128::from_le_bytes(r.array::<16>()?));
            }
            let mut f = Vec::with_capacity(len.min(r.remaining() / 8 + 1));
            for _ in 0..len {
                f.push(read_m61(&mut r)?);
            }
            // A compacted (narrow-lane) bank range-checks the widened
            // wire words before accepting any of them: a value outside
            // the lane's derived bound means the file was produced for a
            // different spec (or tampered with), so refuse with a typed
            // error instead of wrapping silently.
            bank.try_overlay(w, s, f)
                .map_err(|e| WireError::LaneRange {
                    bank: i,
                    cell: e.cell,
                })?;
        }
        let declared_fps = r.u32()? as usize;
        let mut fps = state.fingerprints_mut();
        if declared_fps != fps.len() {
            return Err(WireError::Corrupt(format!(
                "file declares {declared_fps} fingerprints, the spec builds {}",
                fps.len()
            )));
        }
        for fp in fps.iter_mut() {
            **fp = read_m61(&mut r)?;
        }
        if !r.is_done() {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after the sketch state",
                r.remaining()
            )));
        }
        SketchFile::new(spec, state)
    }

    /// Loads a sketch file of either wire format, auto-detected by
    /// content: the binary magic selects format 2, anything else is
    /// treated as format-1 JSON text. A delta record is *not* a sketch
    /// file (it is one summand, not a sum) and is named in its rejection.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.starts_with(V2_MAGIC) {
            return Self::from_bytes_v2(bytes);
        }
        if bytes.starts_with(DELTA_MAGIC) {
            return Err(WireError::Corrupt(
                "this is a delta record, not a standalone sketch file; apply it to a \
                 coordinator state (CLI: the sync verb)"
                    .into(),
            ));
        }
        let text = std::str::from_utf8(bytes).map_err(|_| WireError::BadMagic)?;
        Self::from_json(text)
    }

    /// Serializes and **drains** the sketch's pending delta: a
    /// [`DELTA_MAGIC`] record carrying only the cells touched since the
    /// last drain (see the module docs for the layout) plus every
    /// fingerprint scalar, then zeroes exactly what it shipped. Repeated
    /// calls therefore emit consecutive, disjoint-in-time deltas whose sum
    /// at a coordinator ([`SketchFile::apply_delta`]) reconstructs the
    /// full sketch bit for bit — the linearity law on the delta path. A
    /// call with nothing pending emits a valid empty delta.
    pub fn delta_bytes(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DELTA_MAGIC);
        write_u32(&mut out, WIRE_FORMAT_BIN);
        let spec_json = self.spec.to_json();
        write_u32(&mut out, spec_json.len() as u32);
        out.extend_from_slice(spec_json.as_bytes());
        let banks = self.state.banks();
        write_u32(&mut out, banks.len() as u32);
        for bank in banks {
            // Cell indices (and hence the touched count and every
            // geometry axis) ride as u32; a larger bank would silently
            // alias indices, so refuse loudly instead.
            // gs-lint: allow(no-panic-paths, "encode-side bound on this process's own bank geometry; no wire bytes are parsed here")
            assert!(
                bank.len() <= u32::MAX as usize,
                "a delta record indexes cells as u32, bank holds {} cells",
                bank.len()
            );
            let geom = bank.geometry();
            write_u32(&mut out, geom.reps as u32);
            write_u32(&mut out, geom.levels as u32);
            write_u32(&mut out, geom.slots as u32);
            let touched = bank.dirty_indices();
            write_u32(&mut out, touched.len() as u32);
            for &i in &touched {
                write_u32(&mut out, i as u32);
            }
            let (w, f) = (bank.w_lane(), bank.f_lane());
            let s = bank.s_lane();
            for &i in &touched {
                // gs-lint: allow(no-panic-paths, "encode-side: dirty_indices() yields in-bounds cells of this process's own bank, not wire input")
                out.extend_from_slice(&w[i].to_le_bytes());
            }
            // Same rule as `to_bytes`: `s` rides as 16-byte words, so a
            // narrow bank widens on the way out.
            for &i in &touched {
                out.extend_from_slice(&s.get(i).to_le_bytes());
            }
            for &i in &touched {
                // gs-lint: allow(no-panic-paths, "encode-side: dirty_indices() yields in-bounds cells of this process's own bank, not wire input")
                out.extend_from_slice(&f[i].value().to_le_bytes());
            }
        }
        let fps = self.state.fingerprints();
        write_u32(&mut out, fps.len() as u32);
        for fp in fps {
            out.extend_from_slice(&fp.value().to_le_bytes());
        }
        seal(&mut out);
        self.state.drain_dirty();
        out
    }

    /// Parses and fully validates a delta record, then adds it into this
    /// file's state. Nothing is mutated unless the whole record is valid
    /// and compatible: the spec must equal this file's spec in every
    /// field ([`WireError::SpecMismatch`] otherwise) and the record's
    /// bank geometries must match the state's
    /// ([`WireError::Geometry`]), so a delta can never be summed into a
    /// sketch measuring a different projection.
    pub fn apply_delta(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.apply_delta_parsed(&SketchDelta::from_bytes(bytes)?)
    }

    /// [`SketchFile::apply_delta`] for an already-parsed record (callers
    /// that inspect the delta first — the CLI `sync` verb reports its
    /// touched-cell counts — avoid parsing twice).
    pub fn apply_delta_parsed(&mut self, delta: &SketchDelta) -> Result<(), WireError> {
        if delta.spec != self.spec {
            return Err(WireError::SpecMismatch {
                left: Box::new(self.spec),
                right: Box::new(delta.spec),
            });
        }
        {
            let banks = self.state.banks();
            if delta.banks.len() != banks.len() {
                return Err(WireError::Corrupt(format!(
                    "delta carries {} banks, the receiving sketch has {}",
                    delta.banks.len(),
                    banks.len()
                )));
            }
            for (i, (bank, part)) in banks.iter().zip(&delta.banks).enumerate() {
                if bank.geometry() != part.geom {
                    return Err(WireError::Geometry {
                        bank: i,
                        declared: part.geom,
                        expected: bank.geometry(),
                    });
                }
            }
            let fp_count = self.state.fingerprints().len();
            if delta.fingerprints.len() != fp_count {
                return Err(WireError::Corrupt(format!(
                    "delta carries {} fingerprints, the receiving sketch has {fp_count}",
                    delta.fingerprints.len()
                )));
            }
        }
        // First pass: dry-run every touched cell against the receiving
        // bank's lane width. Delta indices are strictly ascending per
        // bank, so each cell is touched exactly once and the dry-run is
        // exact — the record is accepted or refused as a whole, nothing
        // is mutated on refusal.
        {
            let banks = self.state.banks();
            for (bi, (bank, part)) in banks.iter().zip(&delta.banks).enumerate() {
                for (k, &i) in part.idx.iter().enumerate() {
                    // gs-lint: allow(no-panic-paths, "the delta parser builds idx/w/s/f with exactly `touched` elements each, so k < idx.len() indexes all four in bounds")
                    bank.check_apply(i as usize, part.w[k], part.s[k])
                        .map_err(|e| WireError::LaneRange {
                            bank: bi,
                            cell: e.cell,
                        })?;
                }
            }
        }
        // Fully validated: the sum below cannot fail half-way.
        for (bank, part) in self.state.banks_mut().iter_mut().zip(&delta.banks) {
            for (k, &i) in part.idx.iter().enumerate() {
                // gs-lint: allow(no-panic-paths, "the delta parser builds idx/w/s/f with exactly `touched` elements each, so k < idx.len() indexes all four in bounds")
                bank.apply(i as usize, part.w[k], part.s[k], part.f[k]);
            }
        }
        for (fp, df) in self
            .state
            .fingerprints_mut()
            .into_iter()
            .zip(&delta.fingerprints)
        {
            *fp += *df;
        }
        Ok(())
    }

    /// Folds another site's sketch file into this one. Refuses unless the
    /// specs are identical in every field — the precondition under which
    /// the state merge is infallible and exact — and the bank geometries
    /// agree (they always do for equal specs; the check pins the v2
    /// contract).
    pub fn try_merge(&mut self, other: &SketchFile) -> Result<(), WireError> {
        if self.spec != other.spec {
            return Err(WireError::SpecMismatch {
                left: Box::new(self.spec),
                right: Box::new(other.spec),
            });
        }
        for (i, (a, b)) in self
            .state
            .banks()
            .iter()
            .zip(other.state.banks())
            .enumerate()
        {
            if a.geometry() != b.geometry() {
                return Err(WireError::Geometry {
                    bank: i,
                    declared: b.geometry(),
                    expected: a.geometry(),
                });
            }
        }
        self.state.try_merge(&other.state)?;
        Ok(())
    }

    /// Decodes the carried sketch.
    pub fn decode(&self) -> SketchAnswer {
        self.state.decode()
    }

    /// Decodes the carried sketch under a [`DecodePlan`] (bit-identical
    /// to [`SketchFile::decode`] at every thread count).
    pub fn decode_with(&self, plan: &DecodePlan) -> SketchAnswer {
        self.state.decode_with(plan)
    }
}

/// One bank's share of a parsed delta record: the declared geometry and
/// the touched cells' flat indices (strictly ascending) with their
/// measurement columns.
#[derive(Clone, Debug, PartialEq)]
struct DeltaBank {
    geom: BankGeometry,
    idx: Vec<u32>,
    w: Vec<i64>,
    s: Vec<i128>,
    f: Vec<M61>,
}

/// A parsed, internally-validated delta record: the sender's spec plus the
/// sparse per-bank cell columns and fingerprint scalars emitted by
/// [`SketchFile::delta_bytes`]. Parsing checks the checksum **first**, then
/// every structural invariant (ascending in-range indices, in-field values,
/// exact length); compatibility with a *receiver* is checked by
/// [`SketchFile::apply_delta`], which is the only way to consume one.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchDelta {
    spec: SketchSpec,
    banks: Vec<DeltaBank>,
    fingerprints: Vec<M61>,
}

impl SketchDelta {
    /// Parses and validates a delta record (see the module docs for the
    /// layout). Rejections are typed: [`WireError::BadMagic`] for the
    /// wrong magic (including a full v2 file), [`WireError::Format`],
    /// [`WireError::Truncated`], and [`WireError::Corrupt`] for checksum,
    /// range, ordering, or length violations.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let (spec, mut r) = parse_binary_header(bytes, DELTA_MAGIC)?;
        let bank_count = r.u32()? as usize;
        let mut banks = Vec::with_capacity(bank_count.min(r.remaining() / 16 + 1));
        for b in 0..bank_count {
            let geom = BankGeometry {
                reps: r.u32()? as usize,
                levels: r.u32()? as usize,
                slots: r.u32()? as usize,
            };
            // Cell count in u64 so an absurd header cannot overflow usize
            // arithmetic before it is range-checked.
            let cells = (geom.reps as u64)
                .checked_mul(geom.levels as u64)
                .and_then(|x| x.checked_mul(geom.slots as u64))
                .ok_or_else(|| {
                    WireError::Corrupt(format!("bank {b} declares an impossible geometry"))
                })?;
            let touched = r.u32()? as usize;
            if touched as u64 > cells {
                return Err(WireError::Corrupt(format!(
                    "bank {b} declares {touched} touched cells of {cells}"
                )));
            }
            let mut idx = Vec::with_capacity(touched.min(r.remaining() / 4 + 1));
            for k in 0..touched {
                let i = r.u32()?;
                if i as u64 >= cells {
                    return Err(WireError::Corrupt(format!(
                        "bank {b} touches cell {i}, past its {cells} cells"
                    )));
                }
                if let Some(&prev) = idx.last() {
                    if i <= prev {
                        return Err(WireError::Corrupt(format!(
                            "bank {b} touched-index {k} ({i}) is not strictly \
                             ascending after {prev}"
                        )));
                    }
                }
                idx.push(i);
            }
            let mut w = Vec::with_capacity(touched.min(r.remaining() / 8 + 1));
            for _ in 0..touched {
                w.push(i64::from_le_bytes(r.array::<8>()?));
            }
            let mut s = Vec::with_capacity(touched.min(r.remaining() / 16 + 1));
            for _ in 0..touched {
                s.push(i128::from_le_bytes(r.array::<16>()?));
            }
            let mut f = Vec::with_capacity(touched.min(r.remaining() / 8 + 1));
            for _ in 0..touched {
                f.push(read_m61(&mut r)?);
            }
            banks.push(DeltaBank { geom, idx, w, s, f });
        }
        let fp_count = r.u32()? as usize;
        let mut fingerprints = Vec::with_capacity(fp_count.min(r.remaining() / 8 + 1));
        for _ in 0..fp_count {
            fingerprints.push(read_m61(&mut r)?);
        }
        if !r.is_done() {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after the delta record",
                r.remaining()
            )));
        }
        Ok(SketchDelta {
            spec,
            banks,
            fingerprints,
        })
    }

    /// The spec the sending site sketched under (a coordinator can
    /// bootstrap its empty state from the first delta it receives).
    pub fn spec(&self) -> SketchSpec {
        self.spec
    }

    /// Builds the empty receiving [`SketchFile`] this delta's spec
    /// describes — the coordinator bootstrap for the first delta it ever
    /// receives. Parsing never builds the spec, so it is still untrusted
    /// here: the build is contained exactly like the v2 load path, and a
    /// checksum-valid record whose spec header describes an
    /// unconstructible sketch (the constructors assert on out-of-range
    /// parameters) is a typed error, never a panic.
    pub fn empty_file(&self) -> Result<SketchFile, WireError> {
        let spec = self.spec;
        spec.validate()?;
        let state = contained(|| spec.build()).ok_or_else(|| {
            WireError::Corrupt("spec header describes an unconstructible sketch".into())
        })?;
        Ok(SketchFile { spec, state })
    }

    /// Total touched cells shipped across every bank.
    pub fn touched_cells(&self) -> usize {
        self.banks.iter().map(|b| b.idx.len()).sum()
    }

    /// `true` iff the record ships no cells and only zero fingerprints —
    /// the delta of a sender that absorbed nothing since its last drain.
    pub fn is_empty(&self) -> bool {
        self.touched_cells() == 0 && self.fingerprints.iter().all(|f| f.is_zero())
    }
}

/// Appends a little-endian u32.
fn write_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Reads one fingerprint, rejecting out-of-field values (a uniform random
/// or corrupted word is ≥ p with probability 3/4, so this also catches
/// most bit rot in the f lane).
fn read_m61(r: &mut ByteReader<'_>) -> Result<M61, WireError> {
    let raw = u64::from_le_bytes(r.array::<8>()?);
    if raw >= m61::P {
        return Err(WireError::Corrupt(format!(
            "fingerprint value {raw} outside F_(2^61-1)"
        )));
    }
    Ok(M61::new(raw))
}

/// A bounds-checked little-endian cursor over a byte slice.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Truncated { at: self.pos })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(WireError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?
            .try_into()
            .map_err(|_| WireError::Truncated { at: self.pos })
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SketchTask;
    use gs_sketch::EdgeUpdate;

    fn fed(spec: &SketchSpec, ups: &[EdgeUpdate]) -> AnySketch {
        let mut s = spec.build();
        s.absorb(ups);
        s
    }

    /// Rewrites the trailing checksum after a deliberate in-place edit, so
    /// a test exercises the *structural* validation behind the checksum
    /// gate (a tamperer who re-seals is exactly who that layer is for).
    fn reseal(bytes: &mut [u8]) {
        let split = bytes.len() - 8;
        let sum = v2_checksum(&bytes[..split]);
        bytes[split..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn file_round_trips_bit_for_bit() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(3);
        let state = fed(&spec, &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(2, 3)]);
        let file = SketchFile::new(spec, state).unwrap();
        let back = SketchFile::from_json(&file.to_json()).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let spec = SketchSpec::new(SketchTask::Bipartite, 4);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let bumped = file.to_json().replacen("\"format\":1", "\"format\":2", 1);
        assert_eq!(
            SketchFile::from_json(&bumped),
            Err(WireError::Format { found: 2 })
        );
    }

    #[test]
    fn missing_fields_are_named() {
        assert_eq!(
            SketchFile::from_json("{}"),
            Err(WireError::Missing("format"))
        );
        assert_eq!(
            SketchFile::from_json("{\"format\":1}"),
            Err(WireError::Missing("spec"))
        );
        assert!(SketchFile::from_json("not json").is_err());
    }

    #[test]
    fn tampered_spec_seed_is_caught_at_load() {
        // Editing a file's declared seed to match a merge partner must not
        // smuggle an incompatible state past the spec check into the
        // panicking inner merge: load validates state against spec.
        let spec = SketchSpec::new(SketchTask::Connectivity, 6).with_seed(8);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let tampered = file.to_json().replacen("\"seed\":8", "\"seed\":7", 1);
        assert!(tampered.contains("\"seed\":7"), "spec seed was rewritten");
        assert_eq!(
            SketchFile::from_json(&tampered),
            Err(WireError::StateMismatch)
        );
    }

    #[test]
    fn absurd_state_dimensions_fail_without_allocating() {
        // A tiny corrupt v1 file whose *state* declares a huge n must be
        // rejected by the shape checks, not abort the process trying to
        // allocate the declared bank.
        let spec = SketchSpec::new(SketchTask::Connectivity, 5).with_seed(3);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let tampered = file.to_json().replace("\"n\":5", "\"n\":99999999999");
        assert!(SketchFile::from_json(&tampered).is_err());
    }

    #[test]
    fn unconstructible_v2_spec_header_is_an_error_not_a_panic() {
        // Sketch constructors assert on out-of-range spec values; a v2
        // file whose header declares such a spec must fail with a
        // WireError (the build is contained like the v1 probe).
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(4);
        let file = SketchFile::new(spec, spec.build()).unwrap();
        let mut bytes = file.to_bytes();
        let at = V2_MAGIC.len() + 8;
        let spec_len = u32::from_le_bytes(bytes[at - 4..at].try_into().unwrap()) as usize;
        let header = String::from_utf8(bytes[at..at + spec_len].to_vec()).unwrap();
        // Same-length edit keeps the length prefix valid: n = 8 -> n = 1.
        let bad = header.replacen("\"n\":8", "\"n\":1", 1);
        assert_eq!(bad.len(), spec_len);
        bytes[at..at + spec_len].copy_from_slice(bad.as_bytes());
        reseal(&mut bytes);
        match SketchFile::from_bytes(&bytes) {
            Err(WireError::Spec(e)) => {
                assert_eq!(e, crate::api::SpecError::TooFewVertices { n: 1 })
            }
            other => panic!("expected typed spec rejection, got {other:?}"),
        }
    }

    #[test]
    fn state_spec_disagreement_is_rejected() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8);
        let other = SketchSpec::new(SketchTask::Bipartite, 8);
        assert_eq!(
            SketchFile::new(spec, other.build()),
            Err(WireError::StateMismatch)
        );
        // Same task, different n: also not what the spec describes.
        let small = SketchSpec::new(SketchTask::Connectivity, 4);
        assert_eq!(
            SketchFile::new(spec, small.build()),
            Err(WireError::StateMismatch)
        );
    }

    #[test]
    fn mismatched_specs_refuse_to_merge() {
        let a_spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(1);
        let b_spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(2);
        let mut a = SketchFile::new(a_spec, a_spec.build()).unwrap();
        let b = SketchFile::new(b_spec, b_spec.build()).unwrap();
        assert!(matches!(
            a.try_merge(&b),
            Err(WireError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn checksum_guards_every_binary_byte() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 6).with_seed(2);
        let mut file = SketchFile::new(spec, fed(&spec, &[EdgeUpdate::insert(0, 1)])).unwrap();
        for bytes in [file.to_bytes(), file.delta_bytes()] {
            // Flip one bit past the magic/version header: the checksum
            // gate must refuse before anything is parsed.
            let mut flipped = bytes.clone();
            let at = V2_MAGIC.len() + 4 + 2;
            flipped[at] ^= 0x10;
            let v2 = SketchFile::from_bytes(&flipped);
            let delta = SketchDelta::from_bytes(&flipped);
            let err = if bytes.starts_with(V2_MAGIC) {
                v2.err()
            } else {
                delta.err()
            };
            match err {
                Some(WireError::Corrupt(detail)) => {
                    assert!(detail.contains("checksum"), "detail: {detail}")
                }
                other => panic!("expected checksum rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn delta_round_trip_reconstructs_the_sketch() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(6);
        let first = vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 2)];
        let second = vec![EdgeUpdate::delete(0, 1), EdgeUpdate::insert(3, 4)];
        let mut worker = SketchFile::new(spec, spec.build()).unwrap();
        let mut coordinator = SketchFile::new(spec, spec.build()).unwrap();
        for round in [&first, &second] {
            worker.state.absorb(round);
            let delta = worker.delta_bytes();
            coordinator.apply_delta(&delta).unwrap();
        }
        // Draining left the worker at zero...
        assert_eq!(worker.state, spec.build());
        // ...and the coordinator at the central sketch, bit for bit.
        let whole: Vec<EdgeUpdate> = first.into_iter().chain(second).collect();
        assert_eq!(coordinator.state, fed(&spec, &whole));
        // A drained worker's next delta is valid and empty.
        let empty = worker.delta_bytes();
        assert!(SketchDelta::from_bytes(&empty).unwrap().is_empty());
        coordinator.apply_delta(&empty).unwrap();
        assert_eq!(coordinator.state, fed(&spec, &whole));
    }

    #[test]
    fn delta_refuses_mismatched_spec_and_geometry() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(1);
        let mut worker = SketchFile::new(spec, fed(&spec, &[EdgeUpdate::insert(0, 1)])).unwrap();
        let delta = worker.delta_bytes();
        // Different seed: refused whole, coordinator state untouched.
        let other = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(9);
        let mut coord = SketchFile::new(other, other.build()).unwrap();
        let before = coord.state.clone();
        assert!(matches!(
            coord.apply_delta(&delta),
            Err(WireError::SpecMismatch { .. })
        ));
        assert_eq!(coord.state, before);
        // A full v2 file is not a delta record.
        let full = worker.to_bytes();
        assert_eq!(SketchDelta::from_bytes(&full), Err(WireError::BadMagic));
        // And a delta record is not a standalone sketch file.
        match SketchFile::from_bytes(&delta) {
            Err(WireError::Corrupt(detail)) => {
                assert!(detail.contains("delta record"), "detail: {detail}")
            }
            other => panic!("expected delta-record rejection, got {other:?}"),
        }
    }

    #[test]
    fn hostile_delta_spec_is_contained_at_bootstrap() {
        // Parsing a delta never builds its spec, so a checksum-valid
        // record declaring an unconstructible sketch must be caught by
        // the contained build in empty_file — typed error, no panic.
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(2);
        let mut worker = SketchFile::new(spec, spec.build()).unwrap();
        let bytes = worker.delta_bytes();
        let at = DELTA_MAGIC.len() + 4;
        let spec_len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let header = String::from_utf8(bytes[at + 4..at + 4 + spec_len].to_vec()).unwrap();
        // Same-length edit keeps the length prefix valid: n = 8 -> n = 1.
        let bad = header.replacen("\"n\":8", "\"n\":1", 1);
        assert_eq!(bad.len(), spec_len);
        let mut tampered = bytes.clone();
        tampered[at + 4..at + 4 + spec_len].copy_from_slice(bad.as_bytes());
        reseal(&mut tampered);
        let delta = SketchDelta::from_bytes(&tampered).expect("parsing never builds the spec");
        match delta.empty_file() {
            Err(WireError::Spec(e)) => {
                assert_eq!(e, crate::api::SpecError::TooFewVertices { n: 1 })
            }
            other => panic!("expected typed spec rejection, got {other:?}"),
        }
        // The untampered record bootstraps an empty receiver that the
        // delta then applies into cleanly.
        let delta = SketchDelta::from_bytes(&bytes).unwrap();
        let mut boot = delta.empty_file().unwrap();
        assert_eq!(boot.state, spec.build());
        boot.apply_delta_parsed(&delta).unwrap();
    }

    #[test]
    fn delta_rejects_nonmonotonic_indices_even_resealed() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(3);
        let ups = [EdgeUpdate::insert(0, 1), EdgeUpdate::insert(2, 3)];
        let mut worker = SketchFile::new(spec, fed(&spec, &ups)).unwrap();
        let bytes = worker.delta_bytes();
        let parsed = SketchDelta::from_bytes(&bytes).unwrap();
        // Find a bank shipping >= 2 cells and swap its first two indices.
        let (bank_at, _) = parsed
            .banks
            .iter()
            .enumerate()
            .find(|(_, b)| b.idx.len() >= 2)
            .expect("some bank ships two cells");
        let mut at = DELTA_MAGIC.len() + 4;
        at += 4 + u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4; // bank count
        for b in &parsed.banks[..bank_at] {
            at += 16 + b.idx.len() * (4 + 8 + 16 + 8);
        }
        at += 16; // geometry + touched count of the target bank
        let mut tampered = bytes.clone();
        let (i, j) = (at, at + 4);
        for k in 0..4 {
            tampered.swap(i + k, j + k);
        }
        reseal(&mut tampered);
        match SketchDelta::from_bytes(&tampered) {
            Err(WireError::Corrupt(detail)) => {
                assert!(detail.contains("ascending"), "detail: {detail}")
            }
            other => panic!("expected monotonicity rejection, got {other:?}"),
        }
    }

    #[test]
    fn merging_equal_specs_is_the_linear_merge() {
        let spec = SketchSpec::new(SketchTask::Connectivity, 8).with_seed(5);
        let first = vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 2)];
        let second = vec![EdgeUpdate::insert(2, 3), EdgeUpdate::delete(0, 1)];
        let mut a = SketchFile::new(spec, fed(&spec, &first)).unwrap();
        let b = SketchFile::new(spec, fed(&spec, &second)).unwrap();
        a.try_merge(&b).unwrap();
        let whole: Vec<EdgeUpdate> = first.into_iter().chain(second).collect();
        assert_eq!(a.state, fed(&spec, &whole));
    }
}
