//! `SIMPLE-SPARSIFICATION` (Fig. 2, Theorem 3.3): single-pass
//! ε-sparsification of dynamic graph streams.
//!
//! ```text
//! 1.–2. As MINCUT but with k = O(ε⁻² log² n).
//! 3. For each edge e = (u,v), find j = min{ i : λ_e(H_i) < k }.
//!    If e ∈ H_j, add e to the sparsifier with weight 2^j.
//! ```
//!
//! The decoding realizes the freeze-and-double sampling process analyzed
//! by Lemma 3.5: an edge's weight is frozen at the first level where its
//! witness connectivity drops below `k`; surviving to level `j` happens
//! with probability `2^{−j}` and the compensating weight is `2^j`.
//! `λ_e(H_i)` is answered for **all** edges with one Gomory–Hu tree per
//! level.

use crate::mincut::{MinCutParams, MinCutSketch};
use gs_field::{BackendKind, M61};
use gs_graph::{GomoryHuTree, Graph};
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::par::{par_map, DecodePlan};
use gs_sketch::{DecodeCache, EdgeUpdate, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};

/// Parameters: the Fig. 2 instantiation of the level machinery.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimpleSparsifyParams(pub MinCutParams);

impl SimpleSparsifyParams {
    /// Scaled defaults: `k = max(8, ⌈c·ε⁻²·log₂²n⌉)` with `c = 1/4`.
    ///
    /// (The paper's constant — via Theorem 3.1 — is 253; E5 measures how
    /// far below it one can go before cut errors exceed ε.)
    pub fn scaled(n: usize, eps: f64) -> Self {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as f64;
        let mut p = MinCutParams::scaled(n, eps);
        p.k = (0.25 * log2n * log2n / (eps * eps)).ceil().max(8.0) as usize;
        SimpleSparsifyParams(p)
    }

    /// The paper's constants: `k = 253 ε⁻² log₂² n` (Theorem 3.1) and
    /// `1 + 2 log₂ n` levels.
    pub fn paper(n: usize, eps: f64) -> Self {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as f64;
        let mut p = MinCutParams::paper(n, eps);
        p.k = (253.0 * log2n * log2n / (eps * eps)).ceil() as usize;
        SimpleSparsifyParams(p)
    }

    /// Override the randomness regime.
    pub fn with_kind(mut self, kind: BackendKind) -> Self {
        self.0.kind = kind;
        self.0.forest.kind = kind;
        self
    }
}

/// Sketch state of Fig. 2 (shares the MINCUT level machinery).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimpleSparsifySketch {
    inner: MinCutSketch,
}

impl SimpleSparsifySketch {
    /// A sparsification sketch with scaled default parameters.
    pub fn new(n: usize, eps: f64, seed: u64) -> Self {
        Self::with_params(n, SimpleSparsifyParams::scaled(n, eps), seed)
    }

    /// Full-control constructor.
    pub fn with_params(n: usize, params: SimpleSparsifyParams, seed: u64) -> Self {
        SimpleSparsifySketch {
            inner: MinCutSketch::with_params(n, params.0, seed),
        }
    }

    /// As [`SimpleSparsifySketch::with_params`], deriving the level
    /// machinery's `s`-lane width from the caller's bound on `|delta|`
    /// per update (see `LaneWidth::for_bounds`).
    pub fn with_bounds(
        n: usize,
        params: SimpleSparsifyParams,
        seed: u64,
        max_abs_delta: u64,
    ) -> Self {
        SimpleSparsifySketch {
            inner: MinCutSketch::with_bounds(n, params.0, seed, max_abs_delta),
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// The witness threshold `k`.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Applies a stream update.
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        self.inner.update_edge(u, v, delta);
    }

    /// Batched ingestion through the level machinery's batched kernel.
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        self.inner.absorb_batch(batch);
    }

    /// Sketch size in 1-sparse cells (`O(ε⁻² n log⁵ n)`, Lemma 3.2).
    pub fn cell_count(&self) -> usize {
        self.inner.cell_count()
    }

    /// Step 3: the weighted sparsifier. An edge appearing in witness `H_j`
    /// at its freeze level `j` enters with weight `2^j` (times its
    /// multiplicity in `H_j` for multigraphs).
    pub fn decode(&self) -> Graph {
        self.decode_planned(&DecodePlan::sequential())
    }

    /// [`SimpleSparsifySketch::decode`] under a [`DecodePlan`]: the
    /// per-level witness decodes and their Gomory–Hu trees fan out across
    /// the plan's threads (levels are independent); the freeze pass stays
    /// sequential. Bit-identical to the sequential decode.
    pub fn decode_planned(&self, plan: &DecodePlan) -> Graph {
        let witnesses = self.inner.decode_witnesses_with(plan);
        decode_from_witnesses_with(self.n(), self.k() as u64, &witnesses, plan)
    }

    /// The raw per-level witnesses (for diagnostics / the weighted
    /// wrapper).
    pub fn decode_witnesses(&self) -> Vec<Graph> {
        self.inner.decode_witnesses()
    }

    /// Weighted decode (§3.5): witnesses are built from value-carrying
    /// updates (`delta = ±w`, [`crate::kedge::SubtractMode::Full`]); the
    /// freeze test runs on *unit* connectivity (every weighted edge counts
    /// once — the factor-L slack of Lemma 3.6 absorbs the within-class
    /// spread), while the output weight is `w · 2^j`.
    pub fn decode_weighted(&self) -> Graph {
        self.decode_weighted_planned(&DecodePlan::sequential())
    }

    /// [`SimpleSparsifySketch::decode_weighted`] under a [`DecodePlan`]
    /// (levels and their Gomory–Hu trees in parallel, freeze pass
    /// sequential).
    pub fn decode_weighted_planned(&self, plan: &DecodePlan) -> Graph {
        let detailed = self.inner.decode_witness_edges_per_level_with(plan);
        let n = self.n();
        let k = self.k() as u64;
        let unit_witnesses: Vec<Graph> = detailed
            .iter()
            .map(|edges| Graph::from_edges(n, edges.iter().map(|&(u, v, _)| (u, v))))
            .collect();
        let trees: Vec<Option<gs_graph::GomoryHuTree>> =
            par_map(&unit_witnesses, plan.threads(), |_, h| {
                (h.m() > 0).then(|| gs_graph::GomoryHuTree::build(h))
            });
        let mut out: Vec<(usize, usize, u64)> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for edges in &detailed {
            for &(u, v, _) in edges {
                seen.insert((u, v));
            }
        }
        for (u, v) in seen {
            let mut freeze = None;
            for (i, tree) in trees.iter().enumerate() {
                let lam = match tree {
                    Some(t) => t.min_cut_value(u, v),
                    None => 0,
                };
                if lam < k {
                    freeze = Some(i);
                    break;
                }
            }
            let Some(j) = freeze else { continue };
            // Weight from the level-j witness (0 if the edge was sampled
            // out before level j).
            let w: u64 = detailed[j]
                .iter()
                .filter(|&&(a, b, _)| (a, b) == (u, v))
                .map(|&(_, _, amt)| amt.unsigned_abs())
                .sum();
            if w > 0 {
                out.push((u, v, w << j));
            }
        }
        Graph::from_weighted_edges(n, out)
    }
}

/// Fig. 2 step 3, shared with the weighted wrapper of §3.5: given the
/// level witnesses `H_0, H_1, …`, freeze every edge at
/// `j = min{i : λ_e(H_i) < k}` and keep it iff `e ∈ H_j`, with weight
/// `2^j · multiplicity`.
pub fn decode_from_witnesses(n: usize, k: u64, witnesses: &[Graph]) -> Graph {
    decode_from_witnesses_with(n, k, witnesses, &DecodePlan::sequential())
}

/// [`decode_from_witnesses`] under a [`DecodePlan`]: the per-level
/// Gomory–Hu trees build in parallel (they only read their own witness);
/// the freeze pass over candidate edges stays sequential.
pub fn decode_from_witnesses_with(
    n: usize,
    k: u64,
    witnesses: &[Graph],
    plan: &DecodePlan,
) -> Graph {
    // Gomory–Hu tree per (non-trivial) level answers λ_e(H_i) for all e.
    let trees: Vec<Option<GomoryHuTree>> = par_map(witnesses, plan.threads(), |_, h| {
        (h.m() > 0).then(|| GomoryHuTree::build(h))
    });
    let mut out: Vec<(usize, usize, u64)> = Vec::new();
    // Candidate edges: anything appearing in any witness. An edge of G
    // absent from every witness is, in particular, absent from H at its
    // freeze level, so it would get weight 0 anyway.
    let mut seen = std::collections::BTreeSet::new();
    for h in witnesses {
        for &(u, v, _) in h.edges() {
            seen.insert((u, v));
        }
    }
    for (u, v) in seen {
        // Freeze level: first i with λ_e(H_i) < k.
        let mut j = None;
        for (i, tree) in trees.iter().enumerate() {
            let lam = match tree {
                Some(t) => t.min_cut_value(u, v),
                None => 0,
            };
            if lam < k {
                j = Some(i);
                break;
            }
        }
        let Some(j) = j else { continue };
        let mult = witnesses[j].edge_weight(u, v);
        if mult > 0 {
            out.push((u, v, mult << j));
        }
    }
    Graph::from_weighted_edges(n, out)
}

impl Mergeable for SimpleSparsifySketch {
    fn merge(&mut self, other: &Self) {
        self.inner.merge(&other.inner);
    }
}

impl LinearSketch for SimpleSparsifySketch {
    type Output = Graph;

    fn n(&self) -> usize {
        SimpleSparsifySketch::n(self)
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        SimpleSparsifySketch::update_edge(self, u, v, delta);
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.inner.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    /// Decodes the weighted ε-sparsifier (Fig. 2 step 3).
    fn decode(&self) -> Graph {
        SimpleSparsifySketch::decode(self)
    }

    fn decode_with(&self, plan: &DecodePlan) -> Graph {
        self.decode_planned(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<Graph>, plan: &DecodePlan) -> Graph {
        cache.answer_for(self, |_| self.decode_planned(plan))
    }
}

impl CellBanked for SimpleSparsifySketch {
    fn banks(&self) -> Vec<&CellBank> {
        self.inner.banks()
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        self.inner.banks_mut()
    }

    fn fingerprints(&self) -> Vec<M61> {
        self.inner.fingerprints()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        self.inner.fingerprints_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::cuts::{cut_family_audit, enumerate_cuts, random_cut_audit};
    use gs_graph::{gen, stoer_wagner};
    use gs_stream::GraphStream;

    fn sparsify(g: &Graph, eps: f64, seed: u64) -> Graph {
        let mut s = SimpleSparsifySketch::new(g.n(), eps, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        s.decode()
    }

    #[test]
    fn sparsifier_edges_are_real_edges() {
        let g = gen::gnp(24, 0.5, 1);
        let h = sparsify(&g, 0.5, 2);
        for &(u, v, _) in h.edges() {
            assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
        }
    }

    #[test]
    fn low_connectivity_graph_reproduced_exactly() {
        // Every edge of a cycle has λ_e = 2 < k ⇒ freeze level 0 ⇒ the
        // sparsifier is the graph itself, weight 2^0 = 1.
        let g = gen::cycle(20);
        let h = sparsify(&g, 0.5, 3);
        assert_eq!(h.edges(), g.edges());
    }

    #[test]
    fn grid_reproduced_exactly() {
        let g = gen::grid(5, 5);
        let h = sparsify(&g, 0.5, 5);
        assert_eq!(h.edges(), g.edges());
    }

    #[test]
    fn all_cuts_of_small_graph_within_eps() {
        // Exhaustive Definition-4 audit on a small dense graph.
        let g = gen::complete(12);
        let eps = 0.75;
        let h = sparsify(&g, eps, 7);
        let err = cut_family_audit(&g, &h, enumerate_cuts(12));
        assert!(err <= eps, "worst cut error {err} > ε = {eps}");
    }

    #[test]
    fn random_cuts_of_larger_graph_within_eps() {
        let g = gen::gnp(40, 0.4, 9);
        let eps = 0.75;
        let h = sparsify(&g, eps, 11);
        let err = random_cut_audit(&g, &h, 400, 13);
        assert!(err <= eps, "random-cut error {err} > ε = {eps}");
    }

    #[test]
    fn min_cut_preserved() {
        let g = gen::barbell(8, 2);
        let h = sparsify(&g, 0.5, 15);
        assert_eq!(stoer_wagner::min_cut_value(&h), 2);
    }

    #[test]
    fn planted_partition_cut_preserved() {
        let g = gen::planted_partition(30, 2, 0.8, 0.1, 17);
        let h = sparsify(&g, 0.75, 19);
        let side: Vec<bool> = (0..30).map(|v| v < 15).collect();
        let (gv, hv) = (g.cut_value(&side), h.cut_value(&side));
        assert!(gv > 0);
        let err = (hv as f64 / gv as f64 - 1.0).abs();
        assert!(err <= 0.75, "planted cut error {err}");
    }

    #[test]
    fn churn_equals_insert_only() {
        let g = gen::gnp(20, 0.4, 21);
        let a = {
            let mut s = SimpleSparsifySketch::new(20, 0.5, 23);
            GraphStream::inserts_of(&g).replay(|u, v, d| s.update_edge(u, v, d));
            s.decode()
        };
        let b = {
            let mut s = SimpleSparsifySketch::new(20, 0.5, 23);
            GraphStream::with_churn(&g, 300, 25).replay(|u, v, d| s.update_edge(u, v, d));
            s.decode()
        };
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn dense_graph_actually_sparsifies() {
        // K_48 has m = 1128; with ε = 1 the sparsifier should drop edges
        // (high-connectivity edges get subsampled).
        let g = gen::complete(48);
        let h = sparsify(&g, 1.0, 27);
        assert!(h.m() < g.m(), "no sparsification: {} vs {}", h.m(), g.m());
    }

    #[test]
    fn empty_sketch_decodes_empty() {
        let s = SimpleSparsifySketch::new(8, 0.5, 1);
        assert_eq!(s.decode().m(), 0);
    }
}
