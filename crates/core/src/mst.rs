//! Approximate minimum spanning forest from linear sketches.
//!
//! §1.2 lists "finding minimum spanning trees" among the companion
//! results of \[4\] that this paper's machinery subsumes; we provide it as
//! a library feature because it composes directly out of [`ForestSketch`]:
//!
//! For weights in `[1, W]` and accuracy `ε`, maintain a forest sketch of
//! every *threshold subgraph* `G_i = {e : w(e) ≤ (1+ε)^i}`. By the
//! classical identity (Chazelle / \[4\]),
//!
//! ```text
//! w(MST) = n − (1+ε)^L·cc(G_{L}) + Σ_{i<L} ((1+ε)^{i+1} − (1+ε)^i)·(cc(G_i) − 1) …
//! ```
//!
//! equivalently: charge each forest edge of the coarsest level its
//! threshold, refine downward. We implement the constructive version —
//! decode forests level by level (coarse weights first refined by finer
//! levels), producing an actual spanning forest whose weight is within a
//! `(1+ε)` factor of optimal — more useful to a caller than the scalar.
//!
//! A weighted edge `(u, v, w)` is inserted into the sketches of all
//! levels `i` with `(1+ε)^i ≥ w`; deletions mirror insertions. Distinct
//! weights for the same edge are the caller's responsibility (an edge is
//! one object with one weight, as in §3.5).

use crate::connectivity::{ForestParams, ForestSketch};
use gs_field::M61;
use gs_graph::{Graph, UnionFind};
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::par::DecodePlan;
use gs_sketch::{DecodeCache, EdgeUpdate, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};

/// Parameters for [`MstSketch`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MstParams {
    /// Approximation accuracy: output weight ≤ (1+ε)·OPT.
    pub eps: f64,
    /// Maximum edge weight `W` (levels = ⌈log_{1+ε} W⌉ + 1).
    pub max_weight: u64,
    /// Forest-sketch parameters per level.
    pub forest: ForestParams,
}

/// Linear sketch for (1+ε)-approximate minimum spanning forests of
/// weighted dynamic streams.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MstSketch {
    n: usize,
    params: MstParams,
    seed: u64,
    /// Level thresholds `t_i = (1+ε)^i`, ascending; last ≥ max_weight.
    thresholds: Vec<u64>,
    /// One forest sketch per threshold subgraph.
    levels: Vec<ForestSketch>,
}

impl MstSketch {
    /// An MST sketch for weights in `[1, max_weight]`.
    pub fn new(n: usize, eps: f64, max_weight: u64, seed: u64) -> Self {
        Self::with_params(
            n,
            MstParams {
                eps,
                max_weight,
                forest: ForestParams::for_n(n),
            },
            seed,
        )
    }

    /// Full-control constructor.
    pub fn with_params(n: usize, params: MstParams, seed: u64) -> Self {
        Self::build(n, params, seed, None)
    }

    /// As [`MstSketch::with_params`], deriving every threshold level's
    /// `s`-lane width from the caller's bound on `|delta|` per update
    /// (the threshold subgraphs take unit membership updates, so the
    /// bound is the stream's multiplicity bound; see
    /// `LaneWidth::for_bounds`).
    pub fn with_bounds(n: usize, params: MstParams, seed: u64, max_abs_delta: u64) -> Self {
        Self::build(n, params, seed, Some(max_abs_delta))
    }

    fn build(n: usize, params: MstParams, seed: u64, bound: Option<u64>) -> Self {
        assert!(params.eps > 0.0, "eps must be positive");
        assert!(params.max_weight >= 1);
        let mut thresholds = Vec::new();
        let mut t = 1f64;
        loop {
            thresholds.push(t.floor() as u64);
            if t >= params.max_weight as f64 {
                break;
            }
            // Strictly increase integer thresholds (small ε plateaus).
            t = (t * (1.0 + params.eps)).max(t.floor() + 1.0);
        }
        let levels = (0..thresholds.len())
            .map(|i| {
                let lseed = seed ^ (0x4D_0000 + i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                match bound {
                    Some(d) => ForestSketch::with_bounds(n, params.forest, lseed, d),
                    None => ForestSketch::with_params(n, params.forest, lseed),
                }
            })
            .collect();
        MstSketch {
            n,
            params,
            seed,
            thresholds,
            levels,
        }
    }

    /// Number of threshold levels (`O(ε⁻¹ log W)`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Sketch size in 1-sparse cells across all threshold levels.
    pub fn cell_count(&self) -> usize {
        self.levels.iter().map(|l| l.cell_count()).sum()
    }

    /// Inserts (`delta = +1`) or deletes (`delta = −1`) a weighted edge.
    ///
    /// # Panics
    /// Panics if `w` is 0 or exceeds `max_weight`.
    pub fn update_edge(&mut self, u: usize, v: usize, w: u64, delta: i64) {
        assert!(
            w >= 1 && w <= self.params.max_weight,
            "weight {w} out of range"
        );
        for (i, &t) in self.thresholds.iter().enumerate() {
            if w <= t {
                self.levels[i].update_edge(u, v, delta);
            }
        }
    }

    /// Batched ingestion in the value-carrying convention
    /// (`delta = sign · w`): the batch is partitioned into per-threshold
    /// sub-batches of unit-delta updates, and each threshold forest runs
    /// its own batched kernel.
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        let mut per_level: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); self.thresholds.len()];
        for up in batch {
            assert!(up.delta != 0, "value-carrying update must be non-zero");
            let w = up.weight();
            assert!(
                w >= 1 && w <= self.params.max_weight,
                "weight {w} out of range"
            );
            for (i, &t) in self.thresholds.iter().enumerate() {
                if w <= t {
                    per_level[i].push(EdgeUpdate {
                        u: up.u,
                        v: up.v,
                        delta: up.sign(),
                    });
                }
            }
        }
        for (i, share) in per_level.into_iter().enumerate() {
            if !share.is_empty() {
                self.levels[i].absorb_batch(&share);
            }
        }
    }

    /// Decodes a spanning forest whose total weight (with each edge
    /// charged its level threshold) is within `(1+ε)` of the minimum
    /// spanning forest weight, w.h.p.
    ///
    /// Kruskal-flavored decode: walk levels from the cheapest threshold
    /// up, extending the partial forest with each level's sketch (finer
    /// levels connect what they can before coarser, more expensive edges
    /// are considered).
    pub fn decode(&self) -> Graph {
        self.decode_planned(&DecodePlan::sequential())
    }

    /// [`MstSketch::decode`] under a [`DecodePlan`]. The threshold levels
    /// refine one shared partition (a data dependency — level `i+1` only
    /// connects what levels `≤ i` left apart), so the level walk stays
    /// sequential while each level's Boruvka group queries fan out across
    /// the plan's threads. Bit-identical to the sequential decode.
    pub fn decode_planned(&self, plan: &DecodePlan) -> Graph {
        let mut uf = UnionFind::new(self.n);
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        for (i, level) in self.levels.iter().enumerate() {
            if uf.component_count() == 1 {
                break;
            }
            let f = level.decode_excluding_with(&mut uf, plan);
            let t = self.thresholds[i];
            edges.extend(f.edges.iter().map(|&(u, v, _)| (u, v, t)));
        }
        Graph::from_weighted_edges(self.n, edges)
    }

    /// The threshold-weight total of [`MstSketch::decode`] — the scalar
    /// `(1+ε)`-approximation of `w(MSF)`.
    pub fn approximate_weight(&self) -> u64 {
        self.decode().total_weight()
    }
}

impl Mergeable for MstSketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "merging MST sketches with different seeds"
        );
        assert_eq!(self.n, other.n);
        assert_eq!(self.thresholds, other.thresholds);
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b);
        }
    }
}

impl CellBanked for MstSketch {
    fn banks(&self) -> Vec<&CellBank> {
        self.levels.iter().flat_map(|l| l.banks()).collect()
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        self.levels.iter_mut().flat_map(|l| l.banks_mut()).collect()
    }

    fn fingerprints(&self) -> Vec<M61> {
        Vec::new()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        Vec::new()
    }
}

impl LinearSketch for MstSketch {
    type Output = Graph;

    fn n(&self) -> usize {
        self.n
    }

    /// Value-carrying convention: `delta = sign · w` inserts or deletes
    /// the edge as one object of weight `w = |delta|` (an edge is one
    /// object with one weight, as in §3.5).
    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        assert!(delta != 0, "value-carrying update must be non-zero");
        MstSketch::update_edge(self, u, v, delta.unsigned_abs(), delta.signum());
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    fn decode(&self) -> Graph {
        MstSketch::decode(self)
    }

    fn decode_with(&self, plan: &DecodePlan) -> Graph {
        self.decode_planned(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<Graph>, plan: &DecodePlan) -> Graph {
        cache.answer_for(self, |_| self.decode_planned(plan))
    }
}

/// Exact minimum spanning forest weight (Kruskal) — the test baseline.
pub fn exact_msf_weight(g: &Graph) -> u64 {
    let mut edges: Vec<(usize, usize, u64)> = g.edges().to_vec();
    edges.sort_by_key(|&(_, _, w)| w);
    let mut uf = UnionFind::new(g.n());
    let mut total = 0;
    for (u, v, w) in edges {
        if uf.union(u, v) {
            total += w;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::gen;

    fn sketch_of(g: &Graph, eps: f64, max_w: u64, seed: u64) -> MstSketch {
        let mut s = MstSketch::new(g.n(), eps, max_w, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w, 1);
        }
        s
    }

    #[test]
    fn unweighted_graph_yields_spanning_forest() {
        let g = gen::connected_gnp(30, 0.2, 1);
        let g1 = g.map_weights(|_, _, _| 1);
        let s = sketch_of(&g1, 0.5, 1, 2);
        let f = s.decode();
        assert_eq!(f.m(), 29);
        assert_eq!(f.total_weight(), 29);
        assert!(f.is_connected());
    }

    #[test]
    fn weight_within_one_plus_eps() {
        let eps = 0.25;
        for seed in 0..5u64 {
            let g = gen::gnp_weighted(25, 0.4, 50, seed).map_weights(|_, _, w| w);
            if !g.is_connected() {
                continue;
            }
            let exact = exact_msf_weight(&g);
            let s = sketch_of(&g, eps, 50, 100 + seed);
            let approx = s.approximate_weight();
            assert!(
                approx as f64 >= exact as f64 * 0.999,
                "below OPT: {approx} < {exact}"
            );
            assert!(
                approx as f64 <= (1.0 + eps) * exact as f64 + 1.0,
                "seed {seed}: {approx} > (1+eps)*{exact}"
            );
        }
    }

    #[test]
    fn prefers_cheap_edges() {
        // Path of weight-1 edges plus expensive chords: MSF = the path.
        let mut edges = vec![];
        for i in 0..9usize {
            edges.push((i, i + 1, 1u64));
        }
        edges.push((0, 5, 100));
        edges.push((2, 9, 100));
        let g = Graph::from_weighted_edges(10, edges);
        let s = sketch_of(&g, 0.3, 100, 7);
        let f = s.decode();
        assert_eq!(f.total_weight(), 9);
    }

    #[test]
    fn bridge_must_be_taken_at_its_price() {
        // Two cheap cliques joined only by one expensive bridge.
        let mut edges = vec![];
        for u in 0..5usize {
            for v in (u + 1)..5 {
                edges.push((u, v, 1u64));
                edges.push((5 + u, 5 + v, 1));
            }
        }
        edges.push((0, 5, 64));
        let g = Graph::from_weighted_edges(10, edges);
        let s = sketch_of(&g, 0.5, 64, 9);
        let f = s.decode();
        assert!(f.is_connected());
        let exact = exact_msf_weight(&g); // 8 + 64 = 72
        assert_eq!(exact, 72);
        let approx = f.total_weight();
        assert!(
            approx >= 72 && approx as f64 <= 72.0 * 1.5 + 1.0,
            "approx {approx}"
        );
    }

    #[test]
    fn deletions_reroute_the_forest() {
        let mut s = MstSketch::new(4, 0.5, 10, 11);
        // Cheap path + expensive backup edge.
        s.update_edge(0, 1, 1, 1);
        s.update_edge(1, 2, 1, 1);
        s.update_edge(2, 3, 1, 1);
        s.update_edge(0, 3, 9, 1);
        assert_eq!(s.approximate_weight(), 3);
        // Delete a cheap edge: forest must now pay for the backup.
        s.update_edge(1, 2, 1, -1);
        let f = s.decode();
        assert!(f.is_connected());
        assert!(f.total_weight() >= 11); // 1 + 1 + (9 rounded to a threshold ≥ 9)
    }

    #[test]
    fn disconnected_graph_gives_forest_per_component() {
        let g = Graph::from_weighted_edges(6, [(0, 1, 2), (1, 2, 3), (3, 4, 5)]);
        let s = sketch_of(&g, 0.5, 8, 13);
        let f = s.decode();
        assert_eq!(f.m(), 3);
        assert_eq!(f.components().component_count(), 3); // {0,1,2} {3,4} {5}
    }

    #[test]
    fn merge_is_linear() {
        let g = gen::gnp_weighted(15, 0.4, 20, 15);
        let mut a = MstSketch::new(15, 0.5, 20, 17);
        let mut b = MstSketch::new(15, 0.5, 20, 17);
        let mut central = MstSketch::new(15, 0.5, 20, 17);
        for (i, &(u, v, w)) in g.edges().iter().enumerate() {
            if i % 2 == 0 {
                a.update_edge(u, v, w, 1);
            } else {
                b.update_edge(u, v, w, 1);
            }
            central.update_edge(u, v, w, 1);
        }
        a.merge(&b);
        assert_eq!(a.decode().edges(), central.decode().edges());
    }

    #[test]
    fn level_count_scales_with_eps_and_w() {
        let coarse = MstSketch::new(8, 1.0, 100, 1).level_count();
        let fine = MstSketch::new(8, 0.1, 100, 1).level_count();
        assert!(fine > 2 * coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        let mut s = MstSketch::new(4, 0.5, 10, 1);
        s.update_edge(0, 1, 0, 1);
    }
}
