//! Weighted-graph sparsification (§3.5, Theorem 3.8).
//!
//! > *"For graphs with polynomial edge weights, we will partition the
//! > input graph into O(log n) subgraphs where edge weights are in range
//! > [1,2), [2,4), …. We construct a graph sparsification for each
//! > subgraph and merge the graph sparsifications."*
//!
//! Each weight class `c` (weights in `[2^c, 2^{c+1})`) runs the Fig. 2
//! machinery with **value-carrying** updates: the sketched coordinate of an
//! edge holds `±w` instead of `±1`, so recovered edges arrive with their
//! weights ([`SubtractMode::Full`]); the freeze test uses unit (edge-count)
//! connectivity with `k` doubled — the `L = 2` slack of Lemma 3.6 — and a
//! frozen edge enters the output with weight `w · 2^j` (its inverse
//! sampling probability times its weight, exactly the estimator of
//! Lemma 3.6). Class sparsifiers merge by adding weighted graphs.

use crate::kedge::SubtractMode;
use crate::simple_sparsify::{SimpleSparsifyParams, SimpleSparsifySketch};
use gs_field::{BackendKind, M61};
use gs_graph::Graph;
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::par::{par_map, DecodePlan};
use gs_sketch::{DecodeCache, EdgeUpdate, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};

/// Parameters for [`WeightedSparsifySketch`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightedParams {
    /// Per-class Fig. 2 parameters (with `k` already carrying the L = 2
    /// factor of Lemma 3.6/3.7).
    pub class_params: SimpleSparsifyParams,
    /// Number of weight classes: weights up to `2^classes − 1` accepted
    /// (`O(log n)` for poly-bounded weights per Theorem 3.8).
    pub classes: usize,
}

impl WeightedParams {
    /// Scaled defaults for weights up to `max_weight`.
    pub fn scaled(n: usize, eps: f64, max_weight: u64) -> Self {
        let mut class_params = SimpleSparsifyParams::scaled(n, eps);
        // Lemma 3.6: increase k by the within-class weight spread L = 2.
        class_params.0.k *= 2;
        class_params.0.subtract = SubtractMode::Full;
        WeightedParams {
            class_params,
            classes: (64 - max_weight.max(1).leading_zeros()) as usize,
        }
    }

    /// Override the randomness regime.
    pub fn with_kind(mut self, kind: BackendKind) -> Self {
        self.class_params = self.class_params.with_kind(kind);
        self
    }
}

/// Single-pass ε-sparsifier for dynamic streams of **weighted** edges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightedSparsifySketch {
    n: usize,
    params: WeightedParams,
    seed: u64,
    classes: Vec<SimpleSparsifySketch>,
}

impl WeightedSparsifySketch {
    /// A weighted sparsification sketch for weights in `[1, max_weight]`.
    pub fn new(n: usize, eps: f64, max_weight: u64, seed: u64) -> Self {
        Self::with_params(n, WeightedParams::scaled(n, eps, max_weight), seed)
    }

    /// Full-control constructor.
    pub fn with_params(n: usize, params: WeightedParams, seed: u64) -> Self {
        Self::build(n, params, seed, false)
    }

    /// As [`WeightedSparsifySketch::with_params`], compacting each weight
    /// class's `s`-lanes to its derived per-class delta bound: class `c`
    /// carries value-carrying updates `±w` with `w < 2^{c+1}`, so its
    /// bound is `2^{c+1} − 1` (see `LaneWidth::for_bounds`).
    pub fn with_bounds(n: usize, params: WeightedParams, seed: u64) -> Self {
        Self::build(n, params, seed, true)
    }

    fn build(n: usize, params: WeightedParams, seed: u64, bounded: bool) -> Self {
        assert!(params.classes >= 1);
        assert_eq!(
            params.class_params.0.subtract,
            SubtractMode::Full,
            "weighted classes need full-value removal semantics"
        );
        let classes = (0..params.classes)
            .map(|c| {
                let cseed = seed ^ (0x3E_0000 + c as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
                if bounded {
                    let class_bound = (1u64 << (c + 1).min(63)) - 1;
                    SimpleSparsifySketch::with_bounds(n, params.class_params, cseed, class_bound)
                } else {
                    SimpleSparsifySketch::with_params(n, params.class_params, cseed)
                }
            })
            .collect();
        WeightedSparsifySketch {
            n,
            params,
            seed,
            classes,
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The weight class (index of the range `[2^c, 2^{c+1})`) of `w`.
    fn class_of(&self, w: u64) -> usize {
        (63 - w.leading_zeros()) as usize
    }

    /// Inserts (`delta = +1`) or deletes (`delta = −1`) a weighted edge.
    /// A deletion must carry the same weight as its insertion (the model
    /// of §3.5: an edge is one object with one weight).
    ///
    /// # Panics
    /// Panics if `w = 0` or `w` exceeds the configured weight range.
    pub fn update_edge(&mut self, u: usize, v: usize, w: u64, delta: i64) {
        assert!(w >= 1, "weights must be ≥ 1");
        assert!(delta == 1 || delta == -1, "delta must be ±1");
        let c = self.class_of(w);
        assert!(
            c < self.classes.len(),
            "weight {w} exceeds configured maximum (class {c})"
        );
        // Value-carrying update: the coordinate holds ±w.
        self.classes[c].update_edge(u, v, delta * w as i64);
    }

    /// Batched ingestion in the value-carrying convention
    /// (`delta = sign · w`): the batch is partitioned by weight class and
    /// each class sparsifier runs its own batched kernel.
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        let mut per_class: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); self.classes.len()];
        for up in batch {
            assert!(up.delta != 0, "value-carrying update must be non-zero");
            let c = self.class_of(up.weight());
            assert!(
                c < per_class.len(),
                "weight {} exceeds configured maximum (class {c})",
                up.weight()
            );
            per_class[c].push(*up);
        }
        for (c, share) in per_class.into_iter().enumerate() {
            if !share.is_empty() {
                self.classes[c].absorb_batch(&share);
            }
        }
    }

    /// Sketch size in 1-sparse cells (`O(n(log⁷n + ε⁻²log⁶n))` with the
    /// paper's constants, Theorem 3.8).
    pub fn cell_count(&self) -> usize {
        self.classes.iter().map(|c| c.cell_count()).sum()
    }

    /// Decodes the merged sparsifier: the union of the per-class
    /// sparsifiers (weights add where classes overlap on an edge).
    pub fn decode(&self) -> Graph {
        self.decode_planned(&DecodePlan::sequential())
    }

    /// [`WeightedSparsifySketch::decode`] under a [`DecodePlan`]: the
    /// weight classes are independent sparsifier decodes, so they fan out
    /// one class per thread, with any surplus budget split down into each
    /// class's own level fan-out; class outputs are concatenated in class
    /// order, bit-identical to the sequential union.
    pub fn decode_planned(&self, plan: &DecodePlan) -> Graph {
        let inner = plan.split(self.classes.len());
        let per_class: Vec<Graph> = par_map(&self.classes, plan.threads(), |_, class| {
            class.decode_weighted_planned(&inner)
        });
        let mut acc: Vec<(usize, usize, u64)> = Vec::new();
        for g in &per_class {
            acc.extend(g.edges().iter().copied());
        }
        Graph::from_weighted_edges(self.n, acc)
    }
}

impl CellBanked for WeightedSparsifySketch {
    fn banks(&self) -> Vec<&CellBank> {
        self.classes.iter().flat_map(|c| c.banks()).collect()
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        self.classes
            .iter_mut()
            .flat_map(|c| c.banks_mut())
            .collect()
    }

    fn fingerprints(&self) -> Vec<M61> {
        self.classes.iter().flat_map(|c| c.fingerprints()).collect()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        self.classes
            .iter_mut()
            .flat_map(|c| c.fingerprints_mut())
            .collect()
    }
}

impl Mergeable for WeightedSparsifySketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "merging with different seeds");
        assert_eq!(self.n, other.n);
        assert_eq!(self.params.classes, other.params.classes);
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.merge(b);
        }
    }
}

impl LinearSketch for WeightedSparsifySketch {
    type Output = Graph;

    fn n(&self) -> usize {
        self.n
    }

    /// Value-carrying convention (§3.5): `delta = sign · w` inserts or
    /// deletes the edge as one object of weight `w = |delta|`.
    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        assert!(delta != 0, "value-carrying update must be non-zero");
        WeightedSparsifySketch::update_edge(self, u, v, delta.unsigned_abs(), delta.signum());
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    fn decode(&self) -> Graph {
        WeightedSparsifySketch::decode(self)
    }

    fn decode_with(&self, plan: &DecodePlan) -> Graph {
        self.decode_planned(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<Graph>, plan: &DecodePlan) -> Graph {
        cache.answer_for(self, |_| self.decode_planned(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::cuts::random_cut_audit;
    use gs_graph::gen;

    fn sparsify_weighted(g: &Graph, eps: f64, max_w: u64, seed: u64) -> Graph {
        let mut s = WeightedSparsifySketch::new(g.n(), eps, max_w, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w, 1);
        }
        s.decode()
    }

    #[test]
    fn class_routing() {
        let s = WeightedSparsifySketch::new(8, 0.5, 100, 1);
        assert_eq!(s.class_of(1), 0);
        assert_eq!(s.class_of(2), 1);
        assert_eq!(s.class_of(3), 1);
        assert_eq!(s.class_of(4), 2);
        assert_eq!(s.class_of(100), 6);
        assert_eq!(s.classes.len(), 7);
    }

    #[test]
    #[should_panic]
    fn overweight_edge_rejected() {
        let mut s = WeightedSparsifySketch::new(8, 0.5, 10, 1);
        s.update_edge(0, 1, 1000, 1);
    }

    #[test]
    fn sparse_weighted_graph_reproduced_exactly() {
        // Low-connectivity weighted graph: every class freezes at level 0,
        // so weights come back exactly.
        let g = Graph::from_weighted_edges(
            6,
            [(0, 1, 5), (1, 2, 17), (2, 3, 3), (3, 4, 64), (4, 5, 9)],
        );
        let h = sparsify_weighted(&g, 0.5, 64, 3);
        assert_eq!(h.edges(), g.edges());
    }

    #[test]
    fn weighted_cuts_within_eps() {
        let g = gen::gnp_weighted(28, 0.5, 8, 5);
        let eps = 0.75;
        let h = sparsify_weighted(&g, eps, 8, 7);
        let err = random_cut_audit(&g, &h, 300, 9);
        assert!(err <= eps, "weighted cut error {err}");
    }

    #[test]
    fn deletion_cancels_weighted_edge() {
        let mut s = WeightedSparsifySketch::new(5, 0.5, 16, 11);
        s.update_edge(0, 1, 7, 1);
        s.update_edge(1, 2, 3, 1);
        s.update_edge(0, 1, 7, -1);
        let h = s.decode();
        assert_eq!(h.m(), 1);
        assert_eq!(h.edge_weight(1, 2), 3);
    }

    #[test]
    fn classes_merge_on_decode() {
        // Edges in different classes between the same endpoints add up.
        let mut s = WeightedSparsifySketch::new(4, 0.5, 16, 13);
        s.update_edge(0, 1, 2, 1); // class 1
        s.update_edge(0, 1, 8, 1); // class 3
        let h = s.decode();
        assert_eq!(h.edge_weight(0, 1), 10);
    }

    #[test]
    fn merge_is_linear() {
        let g = gen::gnp_weighted(12, 0.5, 8, 15);
        let mut a = WeightedSparsifySketch::new(12, 0.5, 8, 17);
        let mut b = WeightedSparsifySketch::new(12, 0.5, 8, 17);
        let mut central = WeightedSparsifySketch::new(12, 0.5, 8, 17);
        for (i, &(u, v, w)) in g.edges().iter().enumerate() {
            if i % 2 == 0 {
                a.update_edge(u, v, w, 1);
            } else {
                b.update_edge(u, v, w, 1);
            }
            central.update_edge(u, v, w, 1);
        }
        a.merge(&b);
        assert_eq!(a.decode().edges(), central.decode().edges());
    }
}
