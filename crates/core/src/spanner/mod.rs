//! Spanner construction from adaptive sketches (§5).
//!
//! Unlike §3–§4, these schemes are **r-adaptive** (Definition 2): the
//! linear measurements of a later batch depend on the outcomes of earlier
//! batches. In the stream world each batch is a pass, counted by
//! [`gs_stream::passes::Meter`]:
//!
//! * [`baswana_sen`] — the k-pass emulation of Baswana–Sen: stretch
//!   `2k − 1` with `Õ(n^{1+1/k})` edges, pass-per-phase.
//! * [`recurse`] — `RECURSECONNECT` (§5.1, Theorem 5.1): only
//!   `⌈log₂ k⌉ + 1` passes by growing contracted regions aggressively, at
//!   the price of stretch `k^{log₂ 5} − 1`.

pub mod baswana_sen;
pub mod recurse;

pub use baswana_sen::{baswana_sen, BaswanaSenParams};
pub use recurse::{recurse_connect, RecurseParams, RecurseTrace};
