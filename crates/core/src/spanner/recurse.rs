//! `RECURSECONNECT` (§5.1, Theorem 5.1): a `(k^{log₂5} − 1)`-spanner in
//! `⌈log₂ k⌉ + 1` passes.
//!
//! Pass `i` works on a contraction `G̃_i` of the input graph (supervertices
//! = sets of original vertices) with the invariant
//! `|G̃_i| ≤ n^{1−(2^i−1)/k}`:
//!
//! 1. Every supervertex samples ~`n^{2^i/k}` distinct neighbors: `R`
//!    independent hash partitions of the supervertex-id space into `B`
//!    buckets, an ℓ0-detector per bucket over **original** edge slots, so
//!    every discovered neighbor comes with a witness edge of `G`.
//! 2. Supervertices that discover fewer than `n^{2^i/k}` distinct
//!    neighbors are *low degree*: all their witness edges enter the
//!    spanner and they retire (deviation documented in DESIGN.md §4.6 —
//!    the paper recovers their edges via sparse recovery; keeping all of
//!    them preserves every path through the retired vertex).
//! 3. The sampled edges form `H_i`. Cluster centers `C_i` = greedy maximal
//!    set of high-degree vertices at pairwise `H_i`-distance ≥ 3; every
//!    high-degree vertex is within 2 hops of a center (else greedy would
//!    have added it). All of `H_i`'s witness edges enter the spanner
//!    (superset of the BFS assignment trees, still `Õ(n^{1+1/k})`).
//! 4. Each cluster collapses into one supervertex of `G̃_{i+1}`.
//!
//! A final pass keeps one witness edge per remaining supervertex pair
//! ("after log k passes we have a graph of size √n and we can remember
//! the connectivity between every pair of vertices in O(n) space").
//!
//! Lemma 5.1's recursion `a₁ ≤ 4, a_{i+1} ≤ 5·a_i + 4` on intra-cluster
//! distances is auditable through the returned [`RecurseTrace`] (E14).

use gs_field::{BackendKind, HashBackend, Randomness};
use gs_graph::Graph;
use gs_sketch::domain::{edge_domain, edge_index, edge_unindex};
use gs_sketch::{L0Detector, L0Result};
use gs_stream::passes::Meter;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Parameters for [`recurse_connect`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecurseParams {
    /// The `k` of the `n^{1/k}` space/stretch trade-off. Stretch bound:
    /// `k^{log₂ 5} − 1`.
    pub k: usize,
    /// Multiplier on the per-phase neighbor target `n^{2^i/k}` when sizing
    /// bucket banks (`B = ⌈c · target⌉` buckets per repetition).
    pub bucket_factor: f64,
    /// Independent hash partitions per supervertex.
    pub reps: usize,
    /// Detector repetitions inside each bucket.
    pub detector_reps: usize,
    /// Randomness regime.
    pub kind: BackendKind,
}

impl RecurseParams {
    /// Scaled defaults: `B = 4·n^{2^i/k}` buckets, 3 partitions.
    pub fn scaled(k: usize) -> Self {
        assert!(k >= 2, "RECURSECONNECT needs k ≥ 2");
        RecurseParams {
            k,
            bucket_factor: 4.0,
            reps: 3,
            detector_reps: 2,
            kind: BackendKind::Oracle,
        }
    }
}

/// Per-phase audit record.
#[derive(Clone, Debug)]
pub struct PhaseInfo {
    /// Phase index `i` (0-based).
    pub phase: usize,
    /// The neighbor-sampling target `n^{2^i/k}`.
    pub degree_target: usize,
    /// Supervertex membership **after** this phase's collapse: original
    /// vertices per supervertex (retired vertices absent).
    pub members: Vec<Vec<usize>>,
    /// How many supervertices retired as low-degree this phase.
    pub retired: usize,
    /// Spanner edges added this phase.
    pub edges_added: usize,
}

/// Execution trace for the Lemma 5.1 audit (E14).
#[derive(Clone, Debug, Default)]
pub struct RecurseTrace {
    /// One record per contraction phase.
    pub phases: Vec<PhaseInfo>,
}

/// Builds the spanner; returns it with the audit trace. Pass count
/// (`⌈log₂ k⌉ + 1`) is visible on the `meter`.
pub fn recurse_connect(
    meter: &mut Meter<'_>,
    params: RecurseParams,
    seed: u64,
) -> (Graph, RecurseTrace) {
    let n = meter.n();
    let k = params.k;
    let edge_dom = edge_domain(n);
    let phases = (usize::BITS - (k - 1).leading_zeros()) as usize; // ⌈log₂ k⌉

    // super_of[v] = Some(supervertex id) while v is represented.
    let mut super_of: Vec<Option<usize>> = (0..n).map(Some).collect();
    let mut sv_count = n;
    let mut spanner: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut trace = RecurseTrace::default();

    for phase in 0..phases {
        if sv_count * sv_count <= n {
            break; // already at the √n regime; go to the final pass
        }
        let target = (n as f64)
            .powf((1u64 << phase) as f64 / k as f64)
            .ceil()
            .max(2.0) as usize;
        let buckets = ((target as f64) * params.bucket_factor).ceil() as usize;
        let hashes: Vec<HashBackend> = (0..params.reps)
            .map(|r| {
                params
                    .kind
                    .backend(seed, 0x7C_0000 + (phase * 64 + r) as u64)
            })
            .collect();

        // One bank (reps × buckets detectors over edge slots) per
        // supervertex. Supervertex ids are dense in 0..sv_count.
        let mut banks: Vec<Vec<L0Detector>> = (0..sv_count)
            .map(|p| {
                (0..params.reps * buckets)
                    .map(|i| {
                        L0Detector::with_params(
                            edge_dom,
                            params.detector_reps,
                            seed ^ (0x7C_1000 + ((phase * sv_count + p) * 977 + i) as u64)
                                .wrapping_mul(0x2545_F491_4F6C_DD1D),
                            params.kind,
                        )
                    })
                    .collect()
            })
            .collect();

        // ---- pass ----
        meter.pass(|u, v, d| {
            let (Some(p), Some(q)) = (super_of[u], super_of[v]) else {
                return;
            };
            if p == q {
                return;
            }
            let idx = edge_index(n, u, v);
            for (x, y) in [(p, q), (q, p)] {
                for (r, h) in hashes.iter().enumerate() {
                    let b = h.hash_range(y as u64, buckets as u64) as usize;
                    banks[x][r * buckets + b].update(idx, d);
                }
            }
        });

        // ---- decode: discovered neighbors with witness edges ----
        // adjacency[p]: neighbor supervertex -> witness (u, v).
        let mut adjacency: Vec<BTreeMap<usize, (usize, usize)>> = vec![BTreeMap::new(); sv_count];
        for (p, bank) in banks.iter().enumerate() {
            for det in bank {
                if let L0Result::Sample(idx, _) = det.query() {
                    let (u, v) = edge_unindex(idx);
                    if u >= n || v >= n {
                        continue;
                    }
                    let (Some(pu), Some(pv)) = (super_of[u], super_of[v]) else {
                        continue;
                    };
                    let q = if pu == p {
                        pv
                    } else if pv == p {
                        pu
                    } else {
                        continue; // hash collision artifact; ignore
                    };
                    if q != p {
                        adjacency[p].entry(q).or_insert((u, v));
                    }
                }
            }
        }
        // Symmetrize (q may have seen p even if p missed q).
        for p in 0..sv_count {
            let found: Vec<(usize, (usize, usize))> =
                adjacency[p].iter().map(|(&q, &e)| (q, e)).collect();
            for (q, e) in found {
                adjacency[q].entry(p).or_insert(e);
            }
        }

        let edges_before = spanner.len();
        let high: Vec<bool> = adjacency.iter().map(|a| a.len() >= target).collect();

        // Low-degree supervertices: keep all witness edges, retire.
        let mut retired = vec![false; sv_count];
        for p in 0..sv_count {
            if !high[p] {
                for &(u, v) in adjacency[p].values() {
                    spanner.insert((u.min(v), u.max(v)));
                }
                retired[p] = true;
            }
        }

        // H_i on high-degree vertices: all witness edges join the spanner.
        for p in 0..sv_count {
            if high[p] {
                for (&q, &(u, v)) in &adjacency[p] {
                    if high[q] {
                        spanner.insert((u.min(v), u.max(v)));
                    }
                }
            }
        }

        // ---- greedy centers: maximal, pairwise H_i-distance ≥ 3 ----
        // dist_to_center[p] = hops (≤ 2) to the nearest chosen center.
        let mut near_center = vec![u32::MAX; sv_count];
        let mut assigned_to = vec![usize::MAX; sv_count];
        let mut centers = Vec::new();
        for c in 0..sv_count {
            if !high[c] || near_center[c] != u32::MAX {
                continue; // low degree, or within 2 hops of a center
            }
            centers.push(c);
            // BFS to depth 2 over high-degree H_i adjacency.
            near_center[c] = 0;
            assigned_to[c] = c;
            let mut queue = VecDeque::from([c]);
            while let Some(x) = queue.pop_front() {
                if near_center[x] >= 2 {
                    continue;
                }
                for &y in adjacency[x].keys() {
                    if high[y] && near_center[x] + 1 < near_center[y] {
                        near_center[y] = near_center[x] + 1;
                        assigned_to[y] = c;
                        queue.push_back(y);
                    }
                }
            }
        }

        // ---- collapse ----
        let mut new_id_of_center: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, &c) in centers.iter().enumerate() {
            new_id_of_center.insert(c, i);
        }
        let mut new_members: Vec<Vec<usize>> = vec![Vec::new(); centers.len()];
        let mut new_super: Vec<Option<usize>> = vec![None; n];
        for v in 0..n {
            let Some(p) = super_of[v] else { continue };
            if retired[p] {
                continue; // retired vertices leave the contracted graph
            }
            debug_assert!(high[p]);
            let c = assigned_to[p];
            debug_assert!(c != usize::MAX, "high-degree vertex with no center");
            let ni = new_id_of_center[&c];
            new_super[v] = Some(ni);
            new_members[ni].push(v);
        }
        super_of = new_super;
        sv_count = centers.len();
        trace.phases.push(PhaseInfo {
            phase,
            degree_target: target,
            members: new_members,
            retired: retired.iter().filter(|&&r| r).count(),
            edges_added: spanner.len() - edges_before,
        });
        if sv_count <= 1 {
            break;
        }
    }

    // ---- final pass: one witness edge per remaining supervertex pair ----
    if sv_count >= 2 {
        let pair_count = sv_count * sv_count;
        let mut pair_dets: Vec<Option<L0Detector>> = (0..pair_count).map(|_| None).collect();
        meter.pass(|u, v, d| {
            let (Some(p), Some(q)) = (super_of[u], super_of[v]) else {
                return;
            };
            if p == q {
                return;
            }
            let (a, b) = (p.min(q), p.max(q));
            let slot = a * sv_count + b;
            let det = pair_dets[slot].get_or_insert_with(|| {
                L0Detector::with_params(
                    edge_dom,
                    params.detector_reps,
                    seed ^ (0x7C_F000 + slot as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
                    params.kind,
                )
            });
            det.update(edge_index(n, u, v), d);
        });
        for det in pair_dets.into_iter().flatten() {
            if let L0Result::Sample(idx, _) = det.query() {
                let (u, v) = edge_unindex(idx);
                if u < n && v < n {
                    spanner.insert((u, v));
                }
            }
        }
    } else {
        // Still burn the final pass so the pass count is input-independent
        // (an adaptive scheme's batch count is part of its definition).
        meter.pass(|_, _, _| {});
    }

    (Graph::from_edges(n, spanner), trace)
}

/// The stretch bound of Theorem 5.1 for a given `k`.
pub fn stretch_bound(k: usize) -> f64 {
    (k as f64).powf(5.0f64.log2()) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::paths::max_stretch;
    use gs_graph::{gen, paths};
    use gs_stream::GraphStream;

    fn run(g: &Graph, k: usize, seed: u64) -> (Graph, RecurseTrace, usize) {
        let stream = GraphStream::inserts_of(g);
        let mut meter = Meter::new(&stream);
        let (h, t) = recurse_connect(&mut meter, RecurseParams::scaled(k), seed);
        (h, t, meter.passes())
    }

    #[test]
    fn stretch_bound_values() {
        assert!((stretch_bound(2) - (5.0 - 1.0)).abs() < 1e-9);
        assert!((stretch_bound(4) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn pass_count_is_log_k_plus_one() {
        let g = gen::connected_gnp(60, 0.15, 1);
        for (k, expect) in [(2, 2), (4, 3), (8, 4)] {
            let (_, _, passes) = run(&g, k, 3);
            assert!(
                passes <= expect,
                "k = {k}: {passes} passes > ⌈log₂k⌉+1 = {expect}"
            );
        }
    }

    #[test]
    fn spanner_preserves_connectivity_and_stretch() {
        for (g, tag) in [
            (gen::connected_gnp(50, 0.15, 5), "gnp"),
            (gen::grid(6, 8), "grid"),
            (gen::preferential_attachment(50, 3, 7), "pa"),
        ] {
            let (h, _, _) = run(&g, 2, 9);
            for &(u, v, _) in h.edges() {
                assert!(g.has_edge(u, v), "{tag}: phantom edge ({u},{v})");
            }
            let s = max_stretch(&g, &h).unwrap_or(f64::INFINITY);
            assert!(
                s <= stretch_bound(2),
                "{tag}: stretch {s} > bound {}",
                stretch_bound(2)
            );
        }
    }

    #[test]
    fn dense_graph_sparsifies() {
        let g = gen::complete(64);
        let (h, _, _) = run(&g, 2, 11);
        assert!(h.m() < g.m(), "kept {}/{}", h.m(), g.m());
        let s = max_stretch(&g, &h).expect("connected");
        assert!(s <= stretch_bound(2));
    }

    #[test]
    fn trace_invariant_supervertex_counts_shrink() {
        let g = gen::connected_gnp(80, 0.2, 13);
        let (_, t, _) = run(&g, 2, 15);
        let mut prev = g.n();
        for p in &t.phases {
            let sv = p.members.len();
            assert!(
                sv < prev,
                "phase {} did not shrink: {sv} vs {prev}",
                p.phase
            );
            prev = sv;
        }
    }

    #[test]
    fn lemma_5_1_audit_on_trace() {
        // Intra-supervertex distances in the spanner obey a_{i+1} ≤ 5a_i+4
        // with a_0 = 0 ⇒ a_1 ≤ 4, a_2 ≤ 24 …
        let g = gen::connected_gnp(70, 0.25, 17);
        let (h, t, _) = run(&g, 4, 19);
        let dh = paths::all_pairs_distances(&h);
        let mut bound = 0u32; // a_0
        for p in &t.phases {
            bound = 5 * bound + 4;
            for members in &p.members {
                for (ai, &a) in members.iter().enumerate() {
                    for &b in &members[ai + 1..] {
                        assert!(
                            dh[a][b] <= bound,
                            "phase {}: d_H({a},{b}) = {} > a bound {}",
                            p.phase,
                            dh[a][b],
                            bound
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn churn_stream_supported() {
        let g = gen::connected_gnp(40, 0.2, 21);
        let stream = GraphStream::with_churn(&g, 300, 23);
        let mut meter = Meter::new(&stream);
        let (h, _) = recurse_connect(&mut meter, RecurseParams::scaled(2), 25);
        let s = max_stretch(&g, &h).expect("connected");
        assert!(s <= stretch_bound(2), "churn stretch {s}");
    }

    #[test]
    fn disconnected_components_respected() {
        let mut edges = Vec::new();
        for u in 0..10 {
            for v in (u + 1)..10 {
                edges.push((u, v));
                edges.push((10 + u, 10 + v));
            }
        }
        let g = Graph::from_edges(20, edges);
        let (h, _, _) = run(&g, 2, 27);
        let dg = paths::all_pairs_distances(&g);
        let dh = paths::all_pairs_distances(&h);
        for u in 0..20 {
            for v in 0..20 {
                assert_eq!(dg[u][v] == paths::INF, dh[u][v] == paths::INF);
            }
        }
    }
}
