//! The k-pass Baswana–Sen emulation (§5).
//!
//! > *"The Baswana-Sen construction \[7\] leads to an O(k)-pass (2k−1)-
//! > spanner construction using Õ(n^{1+1/k}) space in dynamic graph
//! > streams … each phase requires selecting O(n^{1/k}) edges incident on
//! > each node and this can be performed via either sparse recovery or ℓ0
//! > sampling."*
//!
//! Phase structure (clusters grow radius ≤ 1 per phase):
//!
//! * **Phase i (pass i).** Every vertex belongs to a cluster of the
//!   current clustering (initially singletons). Clusters are re-sampled
//!   with probability `n^{−1/k}`. During the pass each active vertex `u`
//!   sketches its incident edges **partitioned by the cluster of the other
//!   endpoint**: one ℓ0-detector restricted to sampled clusters (to join
//!   one), plus `R` independent hash-partitions of cluster-ids into `B`
//!   buckets with one ℓ0-detector each (to find one edge per adjacent
//!   cluster when no sampled cluster is adjacent — an adjacent cluster is
//!   alone in its bucket in some repetition w.h.p., DESIGN.md §4.7).
//! * **Decode.** `u` whose own cluster was re-sampled stays. Otherwise,
//!   if the sampled-cluster detector returns an edge, `u` joins that
//!   cluster through it. Otherwise `u` adds one discovered edge per
//!   adjacent cluster and retires from the active graph.
//! * **Final pass.** Every surviving vertex adds one edge to each
//!   adjacent cluster of the final clustering.
//!
//! Total passes: `(k−1) + 1 = k`. Stretch `2k−1`, `Õ(k·n^{1+1/k})` edges.

use gs_field::{BackendKind, HashBackend, Randomness};
use gs_graph::Graph;
use gs_sketch::{L0Detector, L0Result};
use gs_stream::passes::Meter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters for [`baswana_sen`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaswanaSenParams {
    /// Stretch parameter: the spanner satisfies `d_H ≤ (2k−1)·d_G` w.h.p.
    pub k: usize,
    /// Bucket count `B` per hash partition of cluster-id space
    /// (`Θ(n^{1/k} log n)` in the analysis).
    pub buckets: usize,
    /// Independent partitions `R` (isolation repetitions).
    pub reps: usize,
    /// Detector repetitions inside each bucket.
    pub detector_reps: usize,
    /// Randomness regime.
    pub kind: BackendKind,
}

impl BaswanaSenParams {
    /// Scaled defaults: `B = ⌈2·n^{1/k}·log₂ n⌉`, `R = 4`.
    pub fn scaled(n: usize, k: usize) -> Self {
        assert!(k >= 1);
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as f64;
        let frac = (n as f64).powf(1.0 / k as f64);
        BaswanaSenParams {
            k,
            buckets: (2.0 * frac * log2n).ceil() as usize,
            reps: 4,
            detector_reps: 2,
            kind: BackendKind::Oracle,
        }
    }
}

/// Per-vertex sketch bank for one phase.
struct PhaseBank {
    /// Detector over edges to vertices in *sampled* clusters.
    sampled: L0Detector,
    /// `reps × buckets` detectors over edges bucketed by the other
    /// endpoint's cluster id.
    buckets: Vec<L0Detector>,
}

/// Builds a `(2k−1)`-spanner of the streamed graph in exactly `k` passes.
/// Returns the spanner; the pass count is visible on the `meter`.
pub fn baswana_sen(meter: &mut Meter<'_>, params: BaswanaSenParams, seed: u64) -> Graph {
    let n = meter.n();
    let k = params.k;
    let sample_prob_shift = |phase: usize| -> Box<dyn Fn(usize) -> bool> {
        // Cluster c is sampled in this phase with probability n^{-1/k},
        // decided by a hash so that all decisions are consistent.
        let h = params.kind.backend(seed, 0xB5_0000 + phase as u64);
        let thresh = ((u64::MAX as f64) * (n as f64).powf(-1.0 / k as f64)) as u64;
        Box::new(move |c: usize| h.hash64(c as u64) <= thresh)
    };

    // Clustering state: `center[v]` = Some(cluster id) while v is active.
    let mut center: Vec<Option<usize>> = (0..n).map(Some).collect();
    let mut spanner: Vec<(usize, usize)> = Vec::new();

    // Phases 1..k−1 (none when k == 1).
    for phase in 1..k {
        let sampled = sample_prob_shift(phase);
        let bucket_hashes: Vec<HashBackend> = (0..params.reps)
            .map(|r| {
                params
                    .kind
                    .backend(seed, 0xB5_1000 + (phase * 64 + r) as u64)
            })
            .collect();
        let mk_bank = |v: usize| PhaseBank {
            sampled: L0Detector::with_params(
                n as u64,
                params.detector_reps,
                seed ^ (0xB5_2000 + (phase * n + v) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                params.kind,
            ),
            buckets: (0..params.reps * params.buckets)
                .map(|i| {
                    L0Detector::with_params(
                        n as u64,
                        params.detector_reps,
                        seed ^ (0xB5_3000 + ((phase * n + v) * 131 + i) as u64)
                            .wrapping_mul(0xD134_2543_DE82_EF95),
                        params.kind,
                    )
                })
                .collect(),
        };
        let mut banks: Vec<Option<PhaseBank>> =
            (0..n).map(|v| center[v].map(|_| mk_bank(v))).collect();

        // ---- pass ----
        meter.pass(|u, v, d| {
            let (cu, cv) = (center[u], center[v]);
            let (Some(cu), Some(cv)) = (cu, cv) else {
                return;
            };
            if cu == cv {
                return; // intra-cluster edges play no role this phase
            }
            for (x, cy, y) in [(u, cv, v), (v, cu, u)] {
                let bank = banks[x].as_mut().expect("active vertex has a bank");
                if sampled(cy) {
                    bank.sampled.update(y as u64, d);
                }
                for (r, h) in bucket_hashes.iter().enumerate() {
                    let b = h.hash_range(cy as u64, params.buckets as u64) as usize;
                    bank.buckets[r * params.buckets + b].update(y as u64, d);
                }
            }
        });

        // ---- decode ----
        let old_center = center.clone();
        #[allow(clippy::needless_range_loop)] // banks is vertex-indexed
        for u in 0..n {
            let Some(cu) = old_center[u] else { continue };
            if sampled(cu) {
                continue; // cluster survives; u stays put
            }
            let bank = banks[u].take().expect("bank exists");
            if let L0Result::Sample(y, _) = bank.sampled.query() {
                let y = y as usize;
                // Join the sampled cluster of neighbor y through this edge.
                spanner.push((u.min(y), u.max(y)));
                center[u] = old_center[y];
                continue;
            }
            // No sampled cluster adjacent: add one edge per discovered
            // adjacent cluster and retire.
            let mut per_cluster: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
            for det in &bank.buckets {
                if let L0Result::Sample(y, _) = det.query() {
                    let y = y as usize;
                    if let Some(cy) = old_center[y] {
                        per_cluster.entry(cy).or_insert((u.min(y), u.max(y)));
                    }
                }
            }
            spanner.extend(per_cluster.into_values());
            center[u] = None;
        }
    }

    // ---- final pass: one edge to every adjacent cluster ----
    let bucket_hashes: Vec<HashBackend> = (0..params.reps)
        .map(|r| params.kind.backend(seed, 0xB5_9000 + r as u64))
        .collect();
    let mut banks: Vec<Option<Vec<L0Detector>>> = (0..n)
        .map(|v| {
            center[v].map(|_| {
                (0..params.reps * params.buckets)
                    .map(|i| {
                        L0Detector::with_params(
                            n as u64,
                            params.detector_reps,
                            seed ^ (0xB5_A000 + (v * 131 + i) as u64)
                                .wrapping_mul(0xA076_1D64_78BD_642F),
                            params.kind,
                        )
                    })
                    .collect()
            })
        })
        .collect();
    meter.pass(|u, v, d| {
        let (Some(cu), Some(cv)) = (center[u], center[v]) else {
            return;
        };
        if cu == cv {
            return; // same final cluster: connected through its tree
        }
        for (x, cy, y) in [(u, cv, v), (v, cu, u)] {
            let bank = banks[x].as_mut().expect("active");
            for (r, h) in bucket_hashes.iter().enumerate() {
                let b = h.hash_range(cy as u64, params.buckets as u64) as usize;
                bank[r * params.buckets + b].update(y as u64, d);
            }
        }
    });
    #[allow(clippy::needless_range_loop)] // banks is vertex-indexed
    for u in 0..n {
        let Some(bank) = banks[u].take() else {
            continue;
        };
        let mut per_cluster: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        for det in &bank {
            if let L0Result::Sample(y, _) = det.query() {
                let y = y as usize;
                if let Some(cy) = center[y] {
                    per_cluster.entry(cy).or_insert((u.min(y), u.max(y)));
                }
            }
        }
        spanner.extend(per_cluster.into_values());
    }

    Graph::from_edges(n, spanner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::paths::max_stretch;
    use gs_graph::{gen, paths};
    use gs_stream::GraphStream;

    fn run(g: &Graph, k: usize, seed: u64) -> (Graph, usize) {
        let stream = GraphStream::inserts_of(g);
        let mut meter = Meter::new(&stream);
        let spanner = baswana_sen(&mut meter, BaswanaSenParams::scaled(g.n(), k), seed);
        (spanner, meter.passes())
    }

    #[test]
    fn pass_count_is_k() {
        let g = gen::connected_gnp(40, 0.2, 1);
        for k in 1..=4 {
            let (_, passes) = run(&g, k, 7);
            assert_eq!(passes, k, "k = {k}");
        }
    }

    #[test]
    fn k1_returns_whole_graph_distances() {
        // k = 1: stretch bound 1, i.e. the spanner preserves distances.
        let g = gen::connected_gnp(25, 0.2, 3);
        let (h, _) = run(&g, 1, 9);
        assert_eq!(max_stretch(&g, &h), Some(1.0));
    }

    #[test]
    fn stretch_bound_k2() {
        let g = gen::connected_gnp(40, 0.15, 5);
        let (h, _) = run(&g, 2, 11);
        let s = max_stretch(&g, &h).expect("spanner connects what G connects");
        assert!(s <= 3.0, "stretch {s} > 2k−1 = 3");
        for &(u, v, _) in h.edges() {
            assert!(g.has_edge(u, v), "phantom edge");
        }
    }

    #[test]
    fn stretch_bound_k3_multiple_graphs() {
        for (g, tag) in [
            (gen::connected_gnp(50, 0.1, 13), "gnp"),
            (gen::grid(6, 8), "grid"),
            (gen::preferential_attachment(60, 2, 15), "pa"),
        ] {
            let (h, passes) = run(&g, 3, 17);
            assert_eq!(passes, 3);
            let s = max_stretch(&g, &h).expect("connected");
            assert!(s <= 5.0, "{tag}: stretch {s} > 5");
        }
    }

    #[test]
    fn spanner_is_sparser_on_dense_graphs() {
        let g = gen::complete(40);
        let (h, _) = run(&g, 2, 19);
        assert!(h.m() < g.m() / 2, "spanner kept {}/{} edges", h.m(), g.m());
    }

    #[test]
    fn dynamic_stream_with_churn() {
        let g = gen::connected_gnp(30, 0.2, 21);
        let stream = GraphStream::with_churn(&g, 300, 23);
        let mut meter = Meter::new(&stream);
        let h = baswana_sen(&mut meter, BaswanaSenParams::scaled(30, 2), 25);
        let s = max_stretch(&g, &h).expect("connected");
        assert!(s <= 3.0, "churn stretch {s}");
    }

    #[test]
    fn disconnected_graph_supported() {
        let g = Graph::from_edges(10, [(0, 1), (1, 2), (5, 6), (6, 7)]);
        let (h, _) = run(&g, 2, 27);
        // Distances must be preserved within components, not across.
        let dg = paths::all_pairs_distances(&g);
        let dh = paths::all_pairs_distances(&h);
        for u in 0..10 {
            for v in 0..10 {
                if dg[u][v] == paths::INF {
                    assert_eq!(dh[u][v], paths::INF, "spanner connected ({u},{v})");
                } else {
                    assert!(dh[u][v] != paths::INF, "spanner disconnected ({u},{v})");
                }
            }
        }
    }
}
