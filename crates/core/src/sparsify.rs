//! `SPARSIFICATION` (Fig. 3, Theorems 3.4 / 3.7): the paper's main result.
//!
//! ```text
//! 1. Using SIMPLE-SPARSIFICATION, construct a (1 ± 1/2)-sparsification H.
//! 2.–3. For levels i and every u ∈ V, keep k-RECOVERY(x^{u,i}),
//!       k = O(ε⁻² log² n).
//! 4. Post-process: T = Gomory–Hu tree of H. For each tree edge e:
//!    (a) C = the cut induced by e, w(e) its weight;
//!    (b) j = ⌊log(max{w(e)·ε²/log n, 1})⌋;
//!    (c) k-RECOVERY(Σ_{u∈A} x^{u,j}) returns the edges of G_j across C;
//!    (d) a returned edge (u,v) is kept — with weight 2^j — iff the
//!        minimum edge f on the u-v path of T induces C.
//! ```
//!
//! The efficiency win over Fig. 2: instead of `O(log n)` full
//! `k-EDGECONNECT` structures, the final sparsifier is read out of plain
//! sparse-recovery sketches, composed linearly per cut
//! (`Σ_u k-RECOVERY(x^u) = k-RECOVERY(Σ_u x^u)`, §3.3). Step 4d assigns
//! every edge to exactly one Gomory–Hu cut, so no edge is double-counted.

use crate::incidence::{sign_for, update_both_endpoints};
use crate::simple_sparsify::{SimpleSparsifyParams, SimpleSparsifySketch};
use gs_field::{BackendKind, HashBackend, Randomness, M61};
use gs_graph::{GomoryHuTree, Graph};
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::domain::{edge_domain, edge_index, edge_unindex};
use gs_sketch::par::{par_map, DecodePlan};
use gs_sketch::{
    DecodeCache, EdgeUpdate, LinearSketch, Mergeable, RecoveryPlan, SparseRecovery, CELL_BYTES,
};
use serde::{Deserialize, Serialize};

/// Parameters for [`SparsifySketch`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparsifyParams {
    /// Target accuracy ε of the final sparsifier.
    pub eps: f64,
    /// Subsampling levels for the `G_i` (and hence recovery banks).
    pub levels: usize,
    /// Per-node per-level recovery sparsity `k = O(ε⁻² log² n)`.
    pub recovery_k: usize,
    /// Parameters of the rough (1 ± 1/2) sparsifier of step 1.
    pub rough: SimpleSparsifyParams,
    /// Randomness regime.
    pub kind: BackendKind,
}

impl SparsifyParams {
    /// Scaled defaults (see DESIGN.md §4.4): recovery
    /// `k = max(16, ⌈ε⁻² log₂² n / 2⌉)`, rough sparsifier at ε = 1/2.
    pub fn scaled(n: usize, eps: f64) -> Self {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as f64;
        SparsifyParams {
            eps,
            levels: 1 + log2n as usize,
            recovery_k: (0.5 * log2n * log2n / (eps * eps)).ceil().max(16.0) as usize,
            rough: SimpleSparsifyParams::scaled(n, 0.5),
            kind: BackendKind::Oracle,
        }
    }

    /// The paper's constants (space-hungry; experiments only).
    pub fn paper(n: usize, eps: f64) -> Self {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as f64;
        SparsifyParams {
            eps,
            levels: 1 + 2 * log2n as usize,
            recovery_k: (253.0 * log2n * log2n / (eps * eps)).ceil() as usize,
            rough: SimpleSparsifyParams::paper(n, 0.5),
            kind: BackendKind::Oracle,
        }
    }
}

/// Sketch state of Fig. 3.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparsifySketch {
    n: usize,
    params: SparsifyParams,
    seed: u64,
    rough: SimpleSparsifySketch,
    /// `levels × n` recoveries of the `x^{u,i}`, level-major. All nodes in
    /// a level share the projection (they must be summable).
    recoveries: Vec<SparseRecovery>,
    /// Fresh subsampling hash for the recovery levels (step 2's `h_i`).
    level_hash: HashBackend,
}

impl SparsifySketch {
    /// A sparsification sketch with scaled default parameters.
    pub fn new(n: usize, eps: f64, seed: u64) -> Self {
        Self::with_params(n, SparsifyParams::scaled(n, eps), seed)
    }

    /// Full-control constructor.
    pub fn with_params(n: usize, params: SparsifyParams, seed: u64) -> Self {
        Self::build(n, params, seed, None)
    }

    /// As [`SparsifySketch::with_params`], deriving the recovery and
    /// rough-sparsifier `s`-lane widths from the caller's bound on
    /// `|delta|` per update (see `LaneWidth::for_bounds`).
    pub fn with_bounds(n: usize, params: SparsifyParams, seed: u64, max_abs_delta: u64) -> Self {
        Self::build(n, params, seed, Some(max_abs_delta))
    }

    fn build(n: usize, params: SparsifyParams, seed: u64, bound: Option<u64>) -> Self {
        assert!(n >= 2 && params.levels >= 1);
        let domain = edge_domain(n);
        let recoveries = (0..params.levels * n)
            .map(|i| {
                let level = i / n;
                let lseed = seed ^ (0x5A_0000 + level as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
                match bound {
                    Some(d) => SparseRecovery::with_bounds(
                        domain,
                        params.recovery_k,
                        lseed,
                        params.kind,
                        d,
                    ),
                    None => {
                        SparseRecovery::with_kind(domain, params.recovery_k, lseed, params.kind)
                    }
                }
            })
            .collect();
        let rough_seed = seed ^ 0x4F75_6768;
        SparsifySketch {
            n,
            params,
            seed,
            rough: match bound {
                Some(d) => SimpleSparsifySketch::with_bounds(n, params.rough, rough_seed, d),
                None => SimpleSparsifySketch::with_params(n, params.rough, rough_seed),
            },
            recoveries,
            level_hash: params.kind.backend(seed, 0x5A_FFFF),
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Applies a stream update (Definition 1).
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        self.rough.update_edge(u, v, delta);
        let idx = edge_index(self.n, u, v);
        let lmax = self
            .level_hash
            .subsample_level(idx, self.params.levels as u32 - 1);
        for i in 0..=lmax as usize {
            let base = i * self.n;
            update_both_endpoints(u, v, delta, |node, d| {
                self.recoveries[base + node].update(idx, d);
            });
        }
    }

    /// Batched ingestion: the rough sparsifier runs its own batched
    /// kernel; for the recovery banks, all `n` node recoveries of a level
    /// share one projection, so each update's recovery hashes are computed
    /// **once per level** and applied to both endpoints.
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        self.rough.absorb_batch(batch);
        let mut plan = RecoveryPlan::default();
        for up in batch {
            let (u, v, delta) = (up.u, up.v, up.delta);
            if delta == 0 {
                continue;
            }
            let idx = edge_index(self.n, u, v);
            let lmax = self
                .level_hash
                .subsample_level(idx, self.params.levels as u32 - 1);
            let du = sign_for(u, v) * delta;
            for i in 0..=lmax as usize {
                let base = i * self.n;
                self.recoveries[base + u].plan_update(idx, &mut plan);
                self.recoveries[base + u].apply_planned(idx, du, &plan);
                self.recoveries[base + v].apply_planned(idx, -du, &plan);
            }
        }
    }

    /// Sketch size in 1-sparse cells: rough part + samplers
    /// (`O(n(log⁵n + ε⁻² log⁴n))`, Theorem 3.4).
    pub fn cell_count(&self) -> usize {
        self.rough.cell_count()
            + self
                .recoveries
                .iter()
                .map(|r| r.cell_count())
                .sum::<usize>()
    }

    /// Step 4: decode the ε-sparsifier.
    pub fn decode(&self) -> Graph {
        self.decode_planned(&DecodePlan::sequential())
    }

    /// [`SparsifySketch::decode`] under a [`DecodePlan`]: each Gomory–Hu
    /// tree edge induces an independent cut query (lane-sum the A-side's
    /// recoveries with the bank kernel, peel, keep the step-4d survivors),
    /// so the cuts fan out across the plan's threads and their kept edges
    /// are concatenated in tree-edge order — bit-identical to the
    /// sequential loop.
    pub fn decode_planned(&self, plan: &DecodePlan) -> Graph {
        let rough = self.rough.decode_planned(plan);
        if rough.m() == 0 {
            return Graph::new(self.n);
        }
        let tree = GomoryHuTree::build(&rough);
        let log2n = (usize::BITS - self.n.leading_zeros()) as f64;
        let eps2 = self.params.eps * self.params.eps;

        let cuts: Vec<(usize, u64, Vec<bool>)> = tree.induced_cuts().collect();
        let per_cut: Vec<Vec<(usize, usize, u64)>> =
            par_map(&cuts, plan.threads(), |_, (ei, w_cut, side)| {
                // Step 4b with the rough cut weight standing in for w(e).
                let j_raw = ((*w_cut as f64 * eps2 / log2n).max(1.0)).log2().floor() as usize;
                let j = j_raw.min(self.params.levels - 1);

                // Step 4c: linear composition over the A-side of the cut —
                // the bank-kernel recovery sum, no per-cut clones.
                let base = j * self.n;
                let members = (0..self.n).filter(|&v| side[v]);
                let Some(items) =
                    SparseRecovery::decode_sum(members.map(|u| &self.recoveries[base + u]))
                else {
                    // Recovery failed: more than k edges of G_j cross this
                    // cut (w.h.p. impossible at the chosen j; skipping
                    // keeps the output sound, the audit measures the
                    // effect).
                    return Vec::new();
                };
                // Step 4d.
                let mut kept = Vec::new();
                for (idx, val) in items {
                    let (u, v) = edge_unindex(idx);
                    if u >= self.n || v >= self.n || val == 0 {
                        continue;
                    }
                    if tree.path_min_edge(u, v) == *ei {
                        kept.push((u, v, (val.unsigned_abs()) << j));
                    }
                }
                kept
            });
        let out: Vec<(usize, usize, u64)> = per_cut.into_iter().flatten().collect();
        Graph::from_weighted_edges(self.n, out)
    }
}

impl Mergeable for SparsifySketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "merging sparsifiers with different seeds"
        );
        assert_eq!(self.n, other.n);
        assert_eq!(self.params.levels, other.params.levels);
        self.rough.merge(&other.rough);
        for (a, b) in self.recoveries.iter_mut().zip(&other.recoveries) {
            a.merge(b);
        }
    }
}

impl CellBanked for SparsifySketch {
    fn banks(&self) -> Vec<&CellBank> {
        let mut banks = self.rough.banks();
        banks.extend(self.recoveries.iter().flat_map(|r| r.banks()));
        banks
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        let mut banks = self.rough.banks_mut();
        banks.extend(self.recoveries.iter_mut().flat_map(|r| r.banks_mut()));
        banks
    }

    fn fingerprints(&self) -> Vec<M61> {
        let mut fps = self.rough.fingerprints();
        fps.extend(self.recoveries.iter().flat_map(|r| r.fingerprints()));
        fps
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        let mut fps = self.rough.fingerprints_mut();
        fps.extend(
            self.recoveries
                .iter_mut()
                .flat_map(|r| r.fingerprints_mut()),
        );
        fps
    }
}

impl LinearSketch for SparsifySketch {
    type Output = Graph;

    fn n(&self) -> usize {
        self.n
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        SparsifySketch::update_edge(self, u, v, delta);
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    /// Decodes the ε-sparsifier (Fig. 3 step 4).
    fn decode(&self) -> Graph {
        SparsifySketch::decode(self)
    }

    fn decode_with(&self, plan: &DecodePlan) -> Graph {
        self.decode_planned(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<Graph>, plan: &DecodePlan) -> Graph {
        cache.answer_for(self, |_| self.decode_planned(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::cuts::{cut_family_audit, enumerate_cuts, random_cut_audit};
    use gs_graph::{gen, stoer_wagner};
    use gs_stream::GraphStream;

    fn sparsify(g: &Graph, eps: f64, seed: u64) -> Graph {
        let mut s = SparsifySketch::new(g.n(), eps, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        s.decode()
    }

    #[test]
    fn edges_are_real() {
        let g = gen::gnp(20, 0.5, 1);
        let h = sparsify(&g, 0.5, 2);
        for &(u, v, _) in h.edges() {
            assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
        }
    }

    #[test]
    fn sparse_graph_reproduced_exactly() {
        // Cycle: every GH cut has weight 2 ⇒ j = 0 ⇒ full recovery at
        // level 0 reproduces the graph with weight 1.
        let g = gen::cycle(16);
        let h = sparsify(&g, 0.5, 3);
        assert_eq!(h.edges(), g.edges());
    }

    #[test]
    fn all_cuts_within_eps_small_graph() {
        let g = gen::complete(10);
        let eps = 0.75;
        let h = sparsify(&g, eps, 5);
        let err = cut_family_audit(&g, &h, enumerate_cuts(10));
        assert!(err <= eps, "worst enumerated-cut error {err}");
    }

    #[test]
    fn random_cuts_within_eps() {
        let g = gen::gnp(36, 0.4, 7);
        let eps = 0.75;
        let h = sparsify(&g, eps, 9);
        let err = random_cut_audit(&g, &h, 300, 11);
        assert!(err <= eps, "random-cut error {err}");
    }

    #[test]
    fn min_cut_preserved() {
        let g = gen::barbell(8, 2);
        let h = sparsify(&g, 0.5, 13);
        assert_eq!(stoer_wagner::min_cut_value(&h), 2);
    }

    #[test]
    fn churn_equals_insert_only() {
        let g = gen::gnp(18, 0.4, 15);
        let mk = |stream: &GraphStream| {
            let mut s = SparsifySketch::new(18, 0.5, 17);
            stream.replay(|u, v, d| s.update_edge(u, v, d));
            s.decode()
        };
        let a = mk(&GraphStream::inserts_of(&g));
        let b = mk(&GraphStream::with_churn(&g, 250, 19));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn merge_is_linear() {
        let g = gen::gnp(16, 0.5, 21);
        let stream = GraphStream::inserts_of(&g);
        let parts = stream.split(3, 23);
        let mut acc: Option<SparsifySketch> = None;
        for p in &parts {
            let mut s = SparsifySketch::new(16, 0.5, 25);
            p.replay(|u, v, d| s.update_edge(u, v, d));
            match &mut acc {
                None => acc = Some(s),
                Some(a) => a.merge(&s),
            }
        }
        let mut central = SparsifySketch::new(16, 0.5, 25);
        stream.replay(|u, v, d| central.update_edge(u, v, d));
        assert_eq!(acc.unwrap().decode().edges(), central.decode().edges());
    }

    #[test]
    fn empty_graph_decodes_empty() {
        let s = SparsifySketch::new(8, 0.5, 1);
        assert_eq!(s.decode().m(), 0);
    }

    #[test]
    fn gomory_hu_cut_family_within_eps() {
        // Audit specifically the min-cut family (the cuts the paper's
        // guarantee is hardest for): every GH cut of G itself.
        let g = gen::planted_partition(24, 2, 0.8, 0.1, 27);
        let eps = 0.75;
        let h = sparsify(&g, eps, 29);
        let tree = GomoryHuTree::build(&g);
        let cuts: Vec<Vec<bool>> = tree.induced_cuts().map(|(_, _, s)| s).collect();
        let err = cut_family_audit(&g, &h, cuts);
        assert!(err <= eps, "GH-cut error {err}");
    }
}
