//! Companion queries from the authors' SODA'12 paper \[4\], which §1.2
//! lists as the substrate this paper builds on ("testing if a graph was
//! connected, k-connected, bipartite"). They fall out of the structures
//! already implemented here, so we provide them as library features.
//!
//! * [`BipartitenessSketch`] — G is bipartite iff its **double cover**
//!   (two copies `v₀, v₁` of every vertex; edge `{u,v}` becomes
//!   `{u₀,v₁}, {u₁,v₀}`) has exactly `2·c(G)` connected components, where
//!   `c(G)` is G's component count. Both counts come from forest sketches.
//! * [`KConnectivitySketch`] — G is k-edge-connected iff the
//!   `k-EDGECONNECT` witness is (Theorem 2.3's witness preserves every
//!   cut value up to `k`).

use crate::connectivity::{ForestParams, ForestSketch};
use crate::kedge::KEdgeConnectSketch;
use gs_field::M61;
use gs_graph::stoer_wagner;
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::par::DecodePlan;
use gs_sketch::{DecodeCache, EdgeUpdate, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};

/// Single-pass bipartiteness tester for dynamic graph streams.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BipartitenessSketch {
    n: usize,
    /// Forest sketch of G itself.
    base: ForestSketch,
    /// Forest sketch of the double cover (on `2n` vertices).
    cover: ForestSketch,
}

impl BipartitenessSketch {
    /// A tester for `n`-vertex streams.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_params(n, ForestParams::for_n(2 * n), seed)
    }

    /// Full-control constructor (`params` applies to both forests).
    pub fn with_params(n: usize, params: ForestParams, seed: u64) -> Self {
        BipartitenessSketch {
            n,
            base: ForestSketch::with_params(n, params, seed ^ 0xB1_0001),
            cover: ForestSketch::with_params(2 * n, params, seed ^ 0xB1_0002),
        }
    }

    /// As [`BipartitenessSketch::with_params`], deriving both forests'
    /// `s`-lane widths from the caller's bound on `|delta|` per update
    /// (see `LaneWidth::for_bounds`).
    pub fn with_bounds(n: usize, params: ForestParams, seed: u64, max_abs_delta: u64) -> Self {
        BipartitenessSketch {
            n,
            base: ForestSketch::with_bounds(n, params, seed ^ 0xB1_0001, max_abs_delta),
            cover: ForestSketch::with_bounds(2 * n, params, seed ^ 0xB1_0002, max_abs_delta),
        }
    }

    /// Vertex count of the streamed graph (the cover works on `2n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sketch size in 1-sparse cells (base forest + double cover).
    pub fn cell_count(&self) -> usize {
        self.base.cell_count() + self.cover.cell_count()
    }

    /// Applies a stream update (Definition 1).
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        self.base.update_edge(u, v, delta);
        // Double cover: {u₀, v₁} and {u₁, v₀}.
        self.cover.update_edge(u, self.n + v, delta);
        self.cover.update_edge(self.n + u, v, delta);
    }

    /// Batched ingestion: the base forest takes the batch as-is, the
    /// double cover takes the doubled batch, each through the forest's
    /// batched kernel.
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        self.base.absorb_batch(batch);
        let cover_batch: Vec<EdgeUpdate> = batch
            .iter()
            .flat_map(|up| {
                [
                    EdgeUpdate {
                        u: up.u,
                        v: self.n + up.v,
                        delta: up.delta,
                    },
                    EdgeUpdate {
                        u: self.n + up.u,
                        v: up.v,
                        delta: up.delta,
                    },
                ]
            })
            .collect();
        self.cover.absorb_batch(&cover_batch);
    }

    /// `true` iff the streamed graph is bipartite (w.h.p.): the double
    /// cover has exactly twice as many components as the graph. An odd
    /// cycle merges its two cover copies into one component.
    pub fn is_bipartite(&self) -> bool {
        self.is_bipartite_with(&DecodePlan::sequential())
    }

    /// [`BipartitenessSketch::is_bipartite`] under a [`DecodePlan`]: both
    /// forest decodes fan their group queries across the plan's threads.
    pub fn is_bipartite_with(&self, plan: &DecodePlan) -> bool {
        let c = self.base.decode_with(plan).component_count();
        let cc = self.cover.decode_with(plan).component_count();
        cc == 2 * c
    }
}

impl Mergeable for BipartitenessSketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.n, other.n);
        self.base.merge(&other.base);
        self.cover.merge(&other.cover);
    }
}

impl CellBanked for BipartitenessSketch {
    fn banks(&self) -> Vec<&CellBank> {
        let mut banks = self.base.banks();
        banks.extend(self.cover.banks());
        banks
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        let mut banks = self.base.banks_mut();
        banks.extend(self.cover.banks_mut());
        banks
    }

    fn fingerprints(&self) -> Vec<M61> {
        Vec::new()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        Vec::new()
    }
}

impl LinearSketch for BipartitenessSketch {
    type Output = bool;

    fn n(&self) -> usize {
        self.n
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        BipartitenessSketch::update_edge(self, u, v, delta);
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    /// `true` iff the streamed graph is bipartite (w.h.p.).
    fn decode(&self) -> bool {
        self.is_bipartite()
    }

    fn decode_with(&self, plan: &DecodePlan) -> bool {
        self.is_bipartite_with(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<bool>, plan: &DecodePlan) -> bool {
        cache.answer_for(self, |_| self.is_bipartite_with(plan))
    }
}

/// Single-pass k-edge-connectivity tester.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KConnectivitySketch {
    k: usize,
    inner: KEdgeConnectSketch,
}

impl KConnectivitySketch {
    /// A tester for "is the streamed graph k-edge-connected?".
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        KConnectivitySketch {
            k,
            inner: KEdgeConnectSketch::new(n, k, seed),
        }
    }

    /// As [`KConnectivitySketch::new`], deriving the witness stack's
    /// `s`-lane widths from the caller's bound on `|delta|` per update
    /// (see `LaneWidth::for_bounds`).
    pub fn with_bounds(n: usize, k: usize, seed: u64, max_abs_delta: u64) -> Self {
        KConnectivitySketch {
            k,
            inner: KEdgeConnectSketch::with_bounds(
                n,
                k,
                ForestParams::for_n(n),
                Default::default(),
                seed,
                max_abs_delta,
            ),
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// The connectivity threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sketch size in 1-sparse cells.
    pub fn cell_count(&self) -> usize {
        self.inner.cell_count()
    }

    /// Applies a stream update.
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        self.inner.update_edge(u, v, delta);
    }

    /// `true` iff every cut of the streamed graph has ≥ k edges (w.h.p.).
    pub fn is_k_connected(&self) -> bool {
        self.is_k_connected_with(&DecodePlan::sequential())
    }

    /// [`KConnectivitySketch::is_k_connected`] under a [`DecodePlan`]:
    /// the witness decode fans out, the Stoer–Wagner audit stays inline.
    pub fn is_k_connected_with(&self, plan: &DecodePlan) -> bool {
        let h = self.inner.decode_witness_with(plan);
        if h.n() < 2 || h.m() == 0 {
            return false;
        }
        stoer_wagner::min_cut_value(&h) >= self.k as u64
    }
}

impl Mergeable for KConnectivitySketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k);
        self.inner.merge(&other.inner);
    }
}

impl CellBanked for KConnectivitySketch {
    fn banks(&self) -> Vec<&CellBank> {
        self.inner.banks()
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        self.inner.banks_mut()
    }

    fn fingerprints(&self) -> Vec<M61> {
        self.inner.fingerprints()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        self.inner.fingerprints_mut()
    }
}

impl LinearSketch for KConnectivitySketch {
    type Output = bool;

    fn n(&self) -> usize {
        KConnectivitySketch::n(self)
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        KConnectivitySketch::update_edge(self, u, v, delta);
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.inner.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    /// `true` iff the streamed graph is k-edge-connected (w.h.p.).
    fn decode(&self) -> bool {
        self.is_k_connected()
    }

    fn decode_with(&self, plan: &DecodePlan) -> bool {
        self.is_k_connected_with(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<bool>, plan: &DecodePlan) -> bool {
        cache.answer_for(self, |_| self.is_k_connected_with(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::{gen, Graph};
    use gs_stream::GraphStream;

    fn bip_of(g: &Graph, seed: u64) -> bool {
        let mut s = BipartitenessSketch::new(g.n(), seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        s.is_bipartite()
    }

    #[test]
    fn even_cycle_is_bipartite() {
        assert!(bip_of(&gen::cycle(10), 1));
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        assert!(!bip_of(&gen::cycle(9), 2));
    }

    #[test]
    fn grids_are_bipartite_cliques_are_not() {
        assert!(bip_of(&gen::grid(4, 5), 3));
        assert!(!bip_of(&gen::complete(5), 4));
    }

    #[test]
    fn empty_graph_is_bipartite() {
        let s = BipartitenessSketch::new(6, 5);
        assert!(s.is_bipartite());
    }

    #[test]
    fn deletion_restores_bipartiteness() {
        // Even cycle plus a chord that creates an odd cycle; delete it.
        let mut s = BipartitenessSketch::new(8, 7);
        for &(u, v, _) in gen::cycle(8).edges() {
            s.update_edge(u, v, 1);
        }
        assert!(s.is_bipartite());
        s.update_edge(0, 2, 1); // odd chord: triangle 0-1-2
        assert!(!s.is_bipartite());
        s.update_edge(0, 2, -1);
        assert!(s.is_bipartite());
    }

    #[test]
    fn bipartite_components_mixed() {
        // One bipartite component + one odd cycle: not bipartite overall.
        let mut edges: Vec<(usize, usize)> = gen::cycle(6)
            .edges()
            .iter()
            .map(|&(u, v, _)| (u, v))
            .collect();
        edges.extend([(6, 7), (7, 8), (6, 8)]); // triangle on 6,7,8
        let g = Graph::from_edges(9, edges);
        assert!(!bip_of(&g, 9));
    }

    #[test]
    fn k_connectivity_thresholds() {
        // C_12 is exactly 2-edge-connected.
        let g = gen::cycle(12);
        for (k, expect) in [(1usize, true), (2, true), (3, false)] {
            let mut s = KConnectivitySketch::new(g.n(), k, k as u64);
            GraphStream::with_churn(&g, 100, 3).replay(|u, v, d| s.update_edge(u, v, d));
            assert_eq!(s.is_k_connected(), expect, "k = {k}");
        }
    }

    #[test]
    fn k_connectivity_on_clique() {
        let g = gen::complete(8); // 7-edge-connected
        for (k, expect) in [(3usize, true), (7, true)] {
            let mut s = KConnectivitySketch::new(g.n(), k, 10 + k as u64);
            GraphStream::inserts_of(&g).replay(|u, v, d| s.update_edge(u, v, d));
            assert_eq!(s.is_k_connected(), expect, "k = {k}");
        }
    }

    #[test]
    fn disconnected_graph_is_never_k_connected() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3)]);
        let mut s = KConnectivitySketch::new(6, 1, 11);
        for &(u, v, _) in g.edges() {
            s.update_edge(u, v, 1);
        }
        assert!(!s.is_k_connected());
    }

    #[test]
    fn bipartiteness_merges_across_sites() {
        let g = gen::cycle(9); // odd
        let mut a = BipartitenessSketch::new(9, 13);
        let mut b = BipartitenessSketch::new(9, 13);
        for (i, &(u, v, _)) in g.edges().iter().enumerate() {
            if i % 2 == 0 {
                a.update_edge(u, v, 1);
            } else {
                b.update_edge(u, v, 1);
            }
        }
        a.merge(&b);
        assert!(!a.is_bipartite());
    }
}
