//! The `gs-serve` frame codec: length-prefixed request/response envelopes.
//!
//! The resident sketch service speaks a binary protocol whose *payloads*
//! are the existing wire formats of [`crate::wire`] (spec JSON, v2 sketch
//! blobs, delta records) plus the raw update batch defined here. This
//! module is the transport-independent layer: how a frame is delimited on
//! a byte stream, how a request/response envelope is laid out inside it,
//! and the typed error taxonomy a server answers with. It owns no
//! sockets — `gs-serve` drives it over TCP and Unix streams, the tests
//! drive it over in-memory buffers.
//!
//! **Frame** — the unit of the stream protocol:
//!
//! ```text
//! u32 len (LE) · len bytes of body      (len ≤ the reader's cap)
//! ```
//!
//! **Request body:**
//!
//! ```text
//! u8 proto=1 · u8 opcode · u64 correlation id
//! u16 tenant_len · tenant (UTF-8, [A-Za-z0-9][A-Za-z0-9_-]{0,63})
//! payload = rest of body
//! ```
//!
//! **Response body:**
//!
//! ```text
//! u8 proto=1 · u8 status · u64 correlation id
//! status 0 (OK):   payload = rest of body
//! status 1 (ERR):  u16 code · message = rest of body (UTF-8)
//! status 2 (BUSY): u32 retry-after, milliseconds
//! ```
//!
//! Every request carries a correlation id the response echoes, so a
//! client can pipeline frames on one connection. Every refusal is a typed
//! [`ErrCode`] mapped from the existing [`WireError`] / `SpecError` /
//! `MergeError` taxonomy — a hostile or truncated frame yields an error
//! frame (or a closed connection when the length framing itself is lost),
//! never a dead server.
//!
//! The reader follows the capped-allocation discipline of the wire
//! module: a declared length is bounded by the reader's explicit cap
//! (`MAX_FRAME` for the defaults) and the buffer grows only as bytes
//! actually arrive, so a hostile `len` can neither allocate unbacked
//! gigabytes nor wedge the server — see [`read_frame`].

use crate::api::SpecError;
use crate::wire::WireError;
use gs_sketch::EdgeUpdate;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// The protocol version carried as the first byte of every envelope.
pub const PROTO_VERSION: u8 = 1;

/// The default cap on a frame body's declared length (64 MiB): large
/// enough for a full v2 snapshot blob of any test-scale sketch, small
/// enough that a hostile length prefix cannot run the server out of
/// address space. Servers may configure their own cap; the value rides in
/// every [`FrameError::TooLarge`] so the refusal names the limit.
pub const MAX_FRAME: usize = 64 << 20;

/// Magic prefix of a raw edge-update batch payload (`INGEST`'s second
/// accepted payload kind, next to the delta record's `AGMSKD2\n`): `U`
/// for updates. Sniffable against both wire magics and JSON text.
pub const UPDATES_MAGIC: &[u8; 8] = b"AGMSKU1\n";

/// What a frame or envelope failed to parse as. `Io`/`Truncated` are
/// transport-level (the connection is unusable afterwards — the length
/// framing is lost); the rest are body-level and answerable with a typed
/// error frame on a still-healthy connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying stream failed mid-frame.
    Io(String),
    /// The stream ended (or timed out) inside a frame.
    Truncated {
        /// Bytes of the frame that did arrive.
        at: usize,
    },
    /// The stream's read timeout elapsed. The connection is still
    /// healthy; a server uses the idle tick to poll its shutdown flag.
    /// A stateful [`FrameReader`] retains any partial frame across the
    /// tick, so a slow peer trickling bytes across timeouts is never
    /// mistaken for a dead one; the stateless [`read_frame`] only
    /// surfaces `Idle` at a frame boundary (it has nowhere to park
    /// partial bytes, so a mid-frame timeout is an [`FrameError::Io`]).
    Idle,
    /// A frame declared a body longer than the reader's cap.
    TooLarge {
        /// The declared body length.
        declared: usize,
        /// The reader's cap.
        max: usize,
    },
    /// The frame body does not parse as an envelope.
    Malformed(String),
    /// The envelope declares an unsupported protocol version.
    Version {
        /// The version byte found.
        found: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport: {e}"),
            FrameError::Truncated { at } => write!(f, "frame truncated after {at} bytes"),
            FrameError::Idle => write!(f, "connection idle"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame declares {declared} bytes, the cap is {max}")
            }
            FrameError::Malformed(detail) => write!(f, "malformed frame body: {detail}"),
            FrameError::Version { found } => write!(
                f,
                "frame speaks protocol version {found}, this build speaks {PROTO_VERSION}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one length-prefixed frame. Refuses a body over `max` locally —
/// the peer would refuse it anyway, without the bytes ever moving.
pub fn write_frame(w: &mut impl Write, body: &[u8], max: usize) -> Result<(), FrameError> {
    if body.len() > max {
        return Err(FrameError::TooLarge {
            declared: body.len(),
            max,
        });
    }
    let io = |e: io::Error| FrameError::Io(e.to_string());
    w.write_all(&(body.len() as u32).to_le_bytes())
        .map_err(io)?;
    w.write_all(body).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one length-prefixed frame body. `Ok(None)` is a clean close (EOF
/// exactly at a frame boundary); [`FrameError::Idle`] is a read timeout
/// at a frame boundary (no byte consumed — the caller may simply retry).
/// A timeout **mid-frame** is an [`FrameError::Io`] here, because a
/// stateless call has nowhere to keep the partial bytes — a server
/// polling a read timeout must hold a [`FrameReader`] instead, which
/// parks the partial frame across idle ticks. A declared length over
/// `max` is refused **before any allocation**, and the body buffer grows
/// only as bytes actually arrive, so a hostile length prefix can never
/// force an allocation the stream does not back.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut reader = FrameReader::new();
    match reader.read(r, max) {
        Err(FrameError::Idle) if reader.mid_frame() => Err(FrameError::Io(
            "read timed out mid-frame (stateless read_frame cannot resume; \
             use FrameReader)"
                .into(),
        )),
        other => other,
    }
}

/// How large a chunk the body reader asks the stream for at a time: the
/// buffer grows by at most this much per syscall, so allocation tracks
/// arrival.
const READ_CHUNK: usize = 64 << 10;

/// A resumable frame reader for streams with a read timeout.
///
/// [`read_frame`] loses any partially-read frame when the stream's read
/// timeout fires, which turns a slow peer (trickling a frame's bytes
/// across several timeout windows) into a dropped connection. A
/// `FrameReader` owns the partial header/body between calls: every
/// timeout surfaces as [`FrameError::Idle`] with all progress retained,
/// and the next call resumes exactly where the bytes stopped. Only a
/// true close (EOF) or a transport error ends the conversation — EOF
/// mid-frame is [`FrameError::Truncated`], EOF at a boundary is
/// `Ok(None)`.
///
/// The capped-allocation discipline of [`read_frame`] is preserved: the
/// declared length is checked against `max` before any body allocation,
/// and the buffer grows in [`READ_CHUNK`] steps as bytes actually arrive.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Partial length header (little-endian `u32`).
    header: [u8; 4],
    /// Header bytes received so far.
    header_got: usize,
    /// Declared body length, once the header is complete.
    len: Option<usize>,
    /// Body bytes received so far.
    body: Vec<u8>,
}

impl FrameReader {
    /// A reader at a frame boundary.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether a frame is partially read — after [`FrameError::Idle`],
    /// distinguishes "waiting between frames" from "waiting inside one".
    pub fn mid_frame(&self) -> bool {
        self.header_got > 0 || self.len.is_some()
    }

    /// Reads (or resumes reading) one frame. `Ok(None)` is a clean close
    /// at a frame boundary; [`FrameError::Idle`] is a read timeout with
    /// all partial progress retained — call again to resume.
    pub fn read(&mut self, r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
        let len = loop {
            if let Some(len) = self.len {
                break len;
            }
            // gs-lint: allow(no-panic-paths, "header_got <= 4 by the loop exit condition; this slices the local [u8; 4] header buffer, never wire-declared bytes")
            match r.read(&mut self.header[self.header_got..]) {
                Ok(0) if self.header_got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(FrameError::Truncated {
                        at: self.header_got,
                    })
                }
                Ok(n) => {
                    self.header_got += n;
                    if self.header_got == self.header.len() {
                        let len = u32::from_le_bytes(self.header) as usize;
                        if len > max {
                            return Err(FrameError::TooLarge { declared: len, max });
                        }
                        self.len = Some(len);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(FrameError::Idle)
                }
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        };
        let mut chunk = [0u8; READ_CHUNK];
        while self.body.len() < len {
            let want = (len - self.body.len()).min(READ_CHUNK);
            // gs-lint: allow(no-panic-paths, "want is clamped to READ_CHUNK on the line above and chunk is a local [u8; READ_CHUNK]")
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(FrameError::Truncated {
                        at: 4 + self.body.len(),
                    })
                }
                // gs-lint: allow(no-panic-paths, "the Read contract bounds n by the want-sized slice handed to read(); a violator is a broken local Read impl, not wire input")
                Ok(n) => self.body.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(FrameError::Idle)
                }
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
        self.header_got = 0;
        self.len = None;
        Ok(Some(std::mem::take(&mut self.body)))
    }
}

/// The request verbs of the service protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; the payload is echoed back.
    Ping = 0,
    /// Register a tenant; payload = [`crate::api::SketchSpec`] JSON.
    Create = 1,
    /// Feed a tenant; payload = a delta record (`AGMSKD2\n`) or a raw
    /// update batch ([`UPDATES_MAGIC`]).
    Ingest = 2,
    /// Decode a tenant's sketch; payload = optional `u32` thread count
    /// (absent or 0 = auto); response payload = answer JSON.
    Query = 3,
    /// Dump a tenant's full sketch; response payload = a wire-v2 blob.
    Snapshot = 4,
    /// Unregister a tenant and delete its checkpoint.
    Drop = 5,
    /// Service (empty tenant) or tenant counters; response payload = JSON.
    Stats = 6,
    /// Force a durable checkpoint of one tenant (or all, empty tenant).
    Checkpoint = 7,
}

impl Opcode {
    /// All opcodes, for dispatch tables and tests.
    pub const ALL: [Opcode; 8] = [
        Opcode::Ping,
        Opcode::Create,
        Opcode::Ingest,
        Opcode::Query,
        Opcode::Snapshot,
        Opcode::Drop,
        Opcode::Stats,
        Opcode::Checkpoint,
    ];

    fn from_u8(x: u8) -> Option<Opcode> {
        Opcode::ALL.into_iter().find(|&op| op as u8 == x)
    }
}

/// Why a server refused a request — the protocol-level error taxonomy,
/// mapped from the library's typed errors so a remote client sees the
/// same distinctions a linked caller would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrCode {
    /// The envelope or payload does not parse.
    Malformed = 1,
    /// The opcode byte names no verb of this build.
    UnknownOpcode = 2,
    /// The tenant name violates the naming rule ([`valid_tenant`]).
    BadTenantName = 3,
    /// No tenant of that name is registered.
    NoSuchTenant = 4,
    /// `CREATE` of a name that is already registered.
    TenantExists = 5,
    /// The spec was refused ([`SpecError`] — degenerate or hostile).
    Spec = 6,
    /// A wire payload was refused ([`WireError`] — corrupt, truncated,
    /// wrong geometry…).
    Wire = 7,
    /// Sketch states refused to merge (`MergeError`).
    Merge = 8,
    /// An edge update was refused (self-loop, out-of-range, zero delta).
    Update = 9,
    /// The request is valid but the server is shutting down.
    Shutdown = 10,
    /// The server hit an internal invariant violation; the connection
    /// survives, the details are logged server-side.
    Internal = 11,
}

impl ErrCode {
    /// All codes, for round-trip tests.
    pub const ALL: [ErrCode; 11] = [
        ErrCode::Malformed,
        ErrCode::UnknownOpcode,
        ErrCode::BadTenantName,
        ErrCode::NoSuchTenant,
        ErrCode::TenantExists,
        ErrCode::Spec,
        ErrCode::Wire,
        ErrCode::Merge,
        ErrCode::Update,
        ErrCode::Shutdown,
        ErrCode::Internal,
    ];

    fn from_u16(x: u16) -> Option<ErrCode> {
        ErrCode::ALL.into_iter().find(|&c| c as u16 == x)
    }

    /// The code a [`WireError`] maps to: its `Spec` and `Merge` wrappers
    /// keep their own codes, everything else is a wire refusal.
    pub fn from_wire(e: &WireError) -> ErrCode {
        match e {
            WireError::Spec(_) => ErrCode::Spec,
            WireError::Merge(_) => ErrCode::Merge,
            _ => ErrCode::Wire,
        }
    }
}

impl From<&SpecError> for ErrCode {
    fn from(_: &SpecError) -> ErrCode {
        ErrCode::Spec
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrCode::Malformed => "malformed",
            ErrCode::UnknownOpcode => "unknown-opcode",
            ErrCode::BadTenantName => "bad-tenant-name",
            ErrCode::NoSuchTenant => "no-such-tenant",
            ErrCode::TenantExists => "tenant-exists",
            ErrCode::Spec => "spec",
            ErrCode::Wire => "wire",
            ErrCode::Merge => "merge",
            ErrCode::Update => "update",
            ErrCode::Shutdown => "shutdown",
            ErrCode::Internal => "internal",
        };
        write!(f, "{name}")
    }
}

/// `true` iff `name` is a legal tenant name: 1–64 chars, first
/// alphanumeric, rest `[A-Za-z0-9_-]`. The character set is deliberately
/// path-safe — tenant names become checkpoint file names, so separators,
/// dots, and empty names are refused at the protocol boundary instead of
/// being sanitized later.
pub fn valid_tenant(name: &str) -> bool {
    let bytes = name.as_bytes();
    if bytes.len() > 64 {
        return false;
    }
    let Some((first, rest)) = bytes.split_first() else {
        return false;
    };
    first.is_ascii_alphanumeric()
        && rest
            .iter()
            .all(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b'-')
}

/// One request envelope: the verb, the tenant it addresses (empty for
/// service-wide verbs), an opaque payload, and the correlation id the
/// response will echo.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Echoed verbatim in the response.
    pub corr: u64,
    /// The verb.
    pub op: Opcode,
    /// Addressed tenant ("" for `PING`, service `STATS`, all-tenant
    /// `CHECKPOINT`).
    pub tenant: String,
    /// Verb-specific payload (see [`Opcode`]).
    pub payload: Vec<u8>,
}

impl Request {
    /// Encodes the envelope as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.tenant.len() + self.payload.len());
        out.push(PROTO_VERSION);
        out.push(self.op as u8);
        out.extend_from_slice(&self.corr.to_le_bytes());
        out.extend_from_slice(&(self.tenant.len() as u16).to_le_bytes());
        out.extend_from_slice(self.tenant.as_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a frame body as a request envelope. The tenant name is
    /// *not* validated here (an empty name is legal for service-wide
    /// verbs) — servers gate per-verb with [`valid_tenant`].
    pub fn decode(body: &[u8]) -> Result<Request, FrameError> {
        let mut r = Cursor::new(body);
        let version = r.u8()?;
        if version != PROTO_VERSION {
            return Err(FrameError::Version { found: version });
        }
        let op_byte = r.u8()?;
        let op = Opcode::from_u8(op_byte)
            .ok_or_else(|| FrameError::Malformed(format!("unknown opcode {op_byte}")))?;
        let corr = r.u64()?;
        let tenant_len = r.u16()? as usize;
        let tenant = std::str::from_utf8(r.take(tenant_len)?)
            .map_err(|_| FrameError::Malformed("tenant name is not UTF-8".into()))?
            .to_string();
        Ok(Request {
            corr,
            op,
            tenant,
            payload: r.rest().to_vec(),
        })
    }
}

/// One response envelope, correlated to its request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded; the payload is verb-specific.
    Ok {
        /// The request's correlation id.
        corr: u64,
        /// Verb-specific payload.
        payload: Vec<u8>,
    },
    /// The request was refused with a typed error.
    Err {
        /// The request's correlation id (0 when the request's own id
        /// could not be parsed).
        corr: u64,
        /// The taxonomy code.
        code: ErrCode,
        /// Human-readable detail (the underlying typed error's Display).
        msg: String,
    },
    /// Ingest backpressure: the tenant's worker queues are full. Retry
    /// after the given delay instead of queueing without bound.
    Busy {
        /// The request's correlation id.
        corr: u64,
        /// Suggested retry delay, milliseconds.
        retry_after_ms: u32,
    },
}

impl Response {
    /// The echoed correlation id.
    pub fn corr(&self) -> u64 {
        match self {
            Response::Ok { corr, .. }
            | Response::Err { corr, .. }
            | Response::Busy { corr, .. } => *corr,
        }
    }

    /// Encodes the envelope as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(PROTO_VERSION);
        match self {
            Response::Ok { corr, payload } => {
                out.push(0);
                out.extend_from_slice(&corr.to_le_bytes());
                out.extend_from_slice(payload);
            }
            Response::Err { corr, code, msg } => {
                out.push(1);
                out.extend_from_slice(&corr.to_le_bytes());
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                out.extend_from_slice(msg.as_bytes());
            }
            Response::Busy {
                corr,
                retry_after_ms,
            } => {
                out.push(2);
                out.extend_from_slice(&corr.to_le_bytes());
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a frame body as a response envelope.
    pub fn decode(body: &[u8]) -> Result<Response, FrameError> {
        let mut r = Cursor::new(body);
        let version = r.u8()?;
        if version != PROTO_VERSION {
            return Err(FrameError::Version { found: version });
        }
        let status = r.u8()?;
        let corr = r.u64()?;
        match status {
            0 => Ok(Response::Ok {
                corr,
                payload: r.rest().to_vec(),
            }),
            1 => {
                let raw = r.u16()?;
                let code = ErrCode::from_u16(raw)
                    .ok_or_else(|| FrameError::Malformed(format!("unknown error code {raw}")))?;
                let msg = std::str::from_utf8(r.rest())
                    .map_err(|_| FrameError::Malformed("error message is not UTF-8".into()))?
                    .to_string();
                Ok(Response::Err { corr, code, msg })
            }
            2 => {
                let retry_after_ms = r.u32()?;
                if !r.rest().is_empty() {
                    return Err(FrameError::Malformed(
                        "trailing bytes after a BUSY response".into(),
                    ));
                }
                Ok(Response::Busy {
                    corr,
                    retry_after_ms,
                })
            }
            other => Err(FrameError::Malformed(format!(
                "unknown response status {other}"
            ))),
        }
    }
}

/// Encodes a raw edge-update batch as an `INGEST` payload:
/// [`UPDATES_MAGIC`] · `u32` count · per update `u64 u · u64 v ·
/// i64 delta`, all LE. No checksum — the frame rides a reliable stream
/// and every update is re-validated against the receiving tenant's
/// vertex set before anything is enqueued.
pub fn encode_updates(updates: &[EdgeUpdate]) -> Vec<u8> {
    // gs-lint: allow(no-panic-paths, "encode-side bound on a caller-built batch; no wire bytes are parsed here and a 4-billion-update batch is a caller bug worth stopping")
    assert!(
        updates.len() <= u32::MAX as usize,
        "an update batch payload counts updates as u32, got {}",
        updates.len()
    );
    let mut out = Vec::with_capacity(12 + updates.len() * 24);
    out.extend_from_slice(UPDATES_MAGIC);
    out.extend_from_slice(&(updates.len() as u32).to_le_bytes());
    for up in updates {
        out.extend_from_slice(&(up.u as u64).to_le_bytes());
        out.extend_from_slice(&(up.v as u64).to_le_bytes());
        out.extend_from_slice(&up.delta.to_le_bytes());
    }
    out
}

/// Decodes a raw edge-update batch payload. The declared count's
/// allocation is capped by what the payload can physically back (the wire
/// module's rule); endpoint *semantics* (range, self-loops, zero deltas)
/// are the engine's to validate — this only reconstructs the batch.
pub fn decode_updates(bytes: &[u8]) -> Result<Vec<EdgeUpdate>, FrameError> {
    let Some(body) = bytes.strip_prefix(UPDATES_MAGIC) else {
        return Err(FrameError::Malformed(
            "payload is not an update batch (bad magic)".into(),
        ));
    };
    let mut r = Cursor::new(body);
    let count = r.u32()? as usize;
    let mut ups = Vec::with_capacity(count.min(r.remaining() / 24 + 1));
    for _ in 0..count {
        let u = r.u64()?;
        let v = r.u64()?;
        let delta = i64::from_le_bytes(r.array::<8>()?);
        let to_usize = |x: u64| -> Result<usize, FrameError> {
            usize::try_from(x)
                .map_err(|_| FrameError::Malformed(format!("endpoint {x} overflows usize")))
        };
        ups.push(EdgeUpdate {
            u: to_usize(u)?,
            v: to_usize(v)?,
            delta,
        });
    }
    if !r.rest().is_empty() {
        return Err(FrameError::Malformed(format!(
            "{} trailing bytes after the update batch",
            r.rest().len()
        )));
    }
    Ok(ups)
}

/// Encodes a `QUERY` payload: the decode thread count (0 = server
/// default / auto).
pub fn encode_query(threads: u32) -> Vec<u8> {
    threads.to_le_bytes().to_vec()
}

/// Decodes a `QUERY` payload (empty = 0 = auto).
pub fn decode_query(bytes: &[u8]) -> Result<u32, FrameError> {
    match bytes.len() {
        0 => Ok(0),
        4 => Cursor::new(bytes).u32(),
        n => Err(FrameError::Malformed(format!(
            "a query payload is empty or 4 bytes, got {n}"
        ))),
    }
}

/// A bounds-checked little-endian cursor over a frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(FrameError::Truncated { at: self.pos })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(FrameError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], FrameError> {
        self.take(N)?
            .try_into()
            .map_err(|_| FrameError::Truncated { at: self.pos })
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.array::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.array::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = self.bytes.get(self.pos..).unwrap_or(&[]);
        self.pos = self.bytes.len();
        slice
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// A typed service-stats document (what a `STATS` response's JSON payload
/// parses into): the service-wide counters plus one entry per tenant.
/// Built by `gs-serve`, defined here so clients and tests share the
/// schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Registered tenants.
    pub tenants: u64,
    /// Live client connections.
    pub connections: u64,
    /// Frames answered since startup.
    pub frames_served: u64,
    /// The process-wide worker budget.
    pub worker_budget: u64,
    /// Workers currently claimed by tenant engines.
    pub workers_claimed: u64,
    /// Per-tenant counters, sorted by name.
    pub per_tenant: Vec<TenantStats>,
}

/// One tenant's share of a `STATS` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant's name.
    pub name: String,
    /// The tenant's task command (e.g. `connectivity`).
    pub task: String,
    /// The tenant's vertex count.
    pub n: u64,
    /// Raw updates ingested via `INGEST` update batches.
    pub updates_ingested: u64,
    /// Delta records applied via `INGEST`.
    pub deltas_applied: u64,
    /// Ingest batches refused with `BUSY`.
    pub busy_rejections: u64,
    /// `QUERY` frames answered straight from the tenant's decode cache
    /// (no merge, no decode).
    pub decode_cache_hits: u64,
    /// Stale decode-cache memos discarded because ingest moved the
    /// tenant's state since they were armed.
    pub decode_cache_invalidations: u64,
    /// Total nanoseconds spent serving the cache-hit `QUERY` frames
    /// counted by `decode_cache_hits`.
    pub cached_answer_ns: u64,
    /// Engine worker threads this tenant claimed from the budget.
    pub workers: u64,
    /// Resident sketch bytes (engine shards + checkpoint base), charged
    /// at the format-frozen 32-byte wire cell.
    pub bytes_resident: u64,
    /// Width-aware resident lane bytes (engine shards + checkpoint
    /// base): what the process actually holds after `s`-lane compaction.
    pub lane_bytes_resident: u64,
    /// Engine shards (plus the base, counted as one) carrying a sticky
    /// lane-overflow mark — true counter overflow was detected and those
    /// measurements must not be trusted.
    pub lane_overflows: u64,
    /// `true` iff the tenant has unpersisted state.
    pub dirty: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_payloads_decode_without_panicking() {
        assert_eq!(decode_query(&[]).unwrap(), 0);
        assert_eq!(decode_query(&encode_query(7)).unwrap(), 7);
        assert!(matches!(
            decode_query(&[1, 2, 3]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn tenant_names_validate_at_the_boundary() {
        assert!(valid_tenant("alpha-7_b"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("-leading-dash"));
        assert!(!valid_tenant("dot.dot"));
        assert!(!valid_tenant(&"x".repeat(65)));
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha", MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", MAX_FRAME).unwrap();
        write_frame(&mut buf, b"beta", MAX_FRAME).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"beta");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap(), None);
    }

    #[test]
    fn hostile_length_prefix_cannot_force_an_unbacked_allocation() {
        // Declares 4 GiB - 1 but ships 3 bytes: the reader must fail with
        // Truncated after reading what exists, not allocate the claim.
        let mut buf = (u32::MAX - 1).to_le_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, usize::MAX) {
            Err(FrameError::Truncated { at: 7 }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
        // And over the cap it is refused before any read at all.
        let mut r = io::Cursor::new((u32::MAX - 1).to_le_bytes().to_vec());
        match read_frame(&mut r, MAX_FRAME) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, (u32::MAX - 1) as usize);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected cap refusal, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_distinguished_from_clean_close() {
        let mut r = io::Cursor::new(vec![7u8, 0]);
        assert_eq!(
            read_frame(&mut r, MAX_FRAME),
            Err(FrameError::Truncated { at: 2 })
        );
    }

    /// A stream that yields its script one step at a time: `Ok(bytes)`
    /// delivers bytes, `Timeout` simulates an elapsed read timeout, and
    /// the end of the script is EOF. Models a slow peer trickling a
    /// frame across many timeout windows.
    struct Trickle {
        script: Vec<Result<Vec<u8>, ()>>,
        at: usize,
        pending: Vec<u8>,
    }

    impl Trickle {
        fn new(script: Vec<Result<Vec<u8>, ()>>) -> Self {
            Trickle {
                script,
                at: 0,
                pending: Vec::new(),
            }
        }
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending.is_empty() {
                match self.script.get(self.at) {
                    None => return Ok(0),
                    Some(Err(())) => {
                        self.at += 1;
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
                    }
                    Some(Ok(bytes)) => {
                        self.pending = bytes.clone();
                        self.at += 1;
                    }
                }
            }
            let n = self.pending.len().min(buf.len());
            buf[..n].copy_from_slice(&self.pending[..n]);
            self.pending.drain(..n);
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_header_and_mid_body() {
        // One 5-byte frame delivered as: 2 header bytes, timeout, the
        // other 2 header bytes, timeout, 3 body bytes, timeout, the last
        // 2 body bytes. read_frame would drop this client at the first
        // mid-frame timeout; FrameReader must ride through all three.
        let mut framed = Vec::new();
        write_frame(&mut framed, b"alpha", MAX_FRAME).unwrap();
        let mut r = Trickle::new(vec![
            Ok(framed[..2].to_vec()),
            Err(()),
            Ok(framed[2..4].to_vec()),
            Err(()),
            Ok(framed[4..7].to_vec()),
            Err(()),
            Ok(framed[7..].to_vec()),
        ]);
        let mut reader = FrameReader::new();
        let mut idle_ticks = 0;
        let body = loop {
            match reader.read(&mut r, MAX_FRAME) {
                Ok(Some(body)) => break body,
                Err(FrameError::Idle) => idle_ticks += 1,
                other => panic!("expected progress or Idle, got {other:?}"),
            }
        };
        assert_eq!(body, b"alpha");
        assert_eq!(idle_ticks, 3, "every timeout surfaced as a resumable Idle");
        assert!(!reader.mid_frame(), "reader is back at a frame boundary");
        // EOF after the complete frame is a clean close.
        assert_eq!(reader.read(&mut r, MAX_FRAME).unwrap(), None);
    }

    #[test]
    fn frame_reader_reports_mid_frame_across_idle_ticks() {
        let mut r = Trickle::new(vec![Err(()), Ok(vec![5, 0]), Err(())]);
        let mut reader = FrameReader::new();
        // Timeout before any byte: an idle boundary, not a partial frame.
        assert_eq!(reader.read(&mut r, MAX_FRAME), Err(FrameError::Idle));
        assert!(!reader.mid_frame());
        // Two header bytes then a timeout: partial progress retained.
        assert_eq!(reader.read(&mut r, MAX_FRAME), Err(FrameError::Idle));
        assert!(reader.mid_frame());
        // EOF mid-header is a truncation naming the bytes that arrived.
        assert_eq!(
            reader.read(&mut r, MAX_FRAME),
            Err(FrameError::Truncated { at: 2 })
        );
    }

    #[test]
    fn stateless_read_frame_maps_mid_frame_timeout_to_io() {
        // The stateless helper has nowhere to park partial bytes, so a
        // timeout inside a frame must not masquerade as a healthy Idle.
        let mut r = Trickle::new(vec![Ok(vec![5, 0]), Err(())]);
        match read_frame(&mut r, MAX_FRAME) {
            Err(FrameError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
        let mut r = Trickle::new(vec![Err(())]);
        assert_eq!(read_frame(&mut r, MAX_FRAME), Err(FrameError::Idle));
    }

    #[test]
    fn oversized_write_is_refused_locally() {
        let mut buf = Vec::new();
        assert_eq!(
            write_frame(&mut buf, &[0u8; 16], 15),
            Err(FrameError::TooLarge {
                declared: 16,
                max: 15
            })
        );
        assert!(buf.is_empty(), "nothing was written");
    }

    #[test]
    fn request_envelopes_round_trip_for_every_opcode() {
        for (i, op) in Opcode::ALL.into_iter().enumerate() {
            let req = Request {
                corr: 0xFEED_0000 + i as u64,
                op,
                tenant: "tenant-7".into(),
                payload: vec![1, 2, 3, i as u8],
            };
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_envelopes_round_trip_for_every_shape() {
        let shapes = vec![
            Response::Ok {
                corr: 1,
                payload: b"answer".to_vec(),
            },
            Response::Ok {
                corr: 2,
                payload: Vec::new(),
            },
            Response::Busy {
                corr: 3,
                retry_after_ms: 25,
            },
        ];
        for resp in shapes {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
        for code in ErrCode::ALL {
            let resp = Response::Err {
                corr: 9,
                code,
                msg: format!("refused: {code}"),
            };
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn hostile_envelopes_are_typed_errors_never_panics() {
        // Empty body, bad version, unknown opcode, tenant length past the
        // body, non-UTF-8 tenant, unknown status, unknown error code,
        // trailing bytes on BUSY: all Malformed/Truncated/Version, no panic.
        assert!(matches!(
            Request::decode(&[]),
            Err(FrameError::Truncated { .. })
        ));
        assert_eq!(
            Request::decode(&[9, 0]),
            Err(FrameError::Version { found: 9 })
        );
        let mut unknown_op = Request {
            corr: 0,
            op: Opcode::Ping,
            tenant: String::new(),
            payload: Vec::new(),
        }
        .encode();
        unknown_op[1] = 200;
        assert!(matches!(
            Request::decode(&unknown_op),
            Err(FrameError::Malformed(_))
        ));
        let mut long_tenant = Request {
            corr: 0,
            op: Opcode::Ping,
            tenant: "ab".into(),
            payload: Vec::new(),
        }
        .encode();
        let at = long_tenant.len() - 4; // tenant_len field
        long_tenant[at] = 0xFF;
        assert!(matches!(
            Request::decode(&long_tenant),
            Err(FrameError::Truncated { .. })
        ));
        let mut bad_utf8 = Request {
            corr: 0,
            op: Opcode::Ping,
            tenant: "ab".into(),
            payload: Vec::new(),
        }
        .encode();
        let end = bad_utf8.len();
        bad_utf8[end - 1] = 0xFF;
        assert!(matches!(
            Request::decode(&bad_utf8),
            Err(FrameError::Malformed(_))
        ));
        let mut bad_status = Response::Ok {
            corr: 0,
            payload: Vec::new(),
        }
        .encode();
        bad_status[1] = 7;
        assert!(matches!(
            Response::decode(&bad_status),
            Err(FrameError::Malformed(_))
        ));
        let mut bad_code = Response::Err {
            corr: 0,
            code: ErrCode::Wire,
            msg: String::new(),
        }
        .encode();
        bad_code[10] = 0xEE;
        bad_code[11] = 0xEE;
        assert!(matches!(
            Response::decode(&bad_code),
            Err(FrameError::Malformed(_))
        ));
        let mut busy_trailing = Response::Busy {
            corr: 0,
            retry_after_ms: 1,
        }
        .encode();
        busy_trailing.push(0);
        assert!(matches!(
            Response::decode(&busy_trailing),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn tenant_names_are_path_safe() {
        for good in ["a", "t7", "graph-7", "A_b-c", &"x".repeat(64)] {
            assert!(valid_tenant(good), "{good:?} should be legal");
        }
        for bad in [
            "",
            ".",
            "..",
            "a/b",
            "-lead",
            "_lead",
            ".hidden",
            "sp ace",
            "dot.state",
            "uni😀",
            &"x".repeat(65),
        ] {
            assert!(!valid_tenant(bad), "{bad:?} should be refused");
        }
    }

    #[test]
    fn update_batches_round_trip_and_reject_damage() {
        let ups = vec![
            EdgeUpdate::insert(0, 1),
            EdgeUpdate::delete(5, 2),
            EdgeUpdate {
                u: 3,
                v: 4,
                delta: -7,
            },
        ];
        let bytes = encode_updates(&ups);
        assert_eq!(decode_updates(&bytes).unwrap(), ups);
        // Truncation, trailing bytes, a count the payload cannot back,
        // and a foreign magic are all typed refusals.
        assert!(matches!(
            decode_updates(&bytes[..bytes.len() - 3]),
            Err(FrameError::Truncated { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.push(9);
        assert!(matches!(
            decode_updates(&trailing),
            Err(FrameError::Malformed(_))
        ));
        let mut absurd = UPDATES_MAGIC.to_vec();
        absurd.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_updates(&absurd),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            decode_updates(b"AGMSKD2\nxxxx"),
            Err(FrameError::Malformed(_))
        ));
        assert_eq!(decode_updates(&encode_updates(&[])).unwrap(), vec![]);
    }

    #[test]
    fn query_payloads_round_trip() {
        assert_eq!(decode_query(&encode_query(0)).unwrap(), 0);
        assert_eq!(decode_query(&encode_query(8)).unwrap(), 8);
        assert_eq!(decode_query(&[]).unwrap(), 0);
        assert!(matches!(
            decode_query(&[1, 2, 3]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn err_code_maps_preserve_the_wire_taxonomy() {
        use crate::api::{SketchSpec, SketchTask};
        assert_eq!(ErrCode::from_wire(&WireError::BadMagic), ErrCode::Wire);
        assert_eq!(
            ErrCode::from_wire(&WireError::Spec(SpecError::TooFewVertices { n: 1 })),
            ErrCode::Spec
        );
        let spec = SketchSpec::new(SketchTask::Connectivity, 4);
        let other = SketchSpec::new(SketchTask::Connectivity, 5);
        assert_eq!(
            ErrCode::from_wire(&WireError::SpecMismatch {
                left: Box::new(spec),
                right: Box::new(other),
            }),
            ErrCode::Wire
        );
    }

    #[test]
    fn service_stats_round_trip_as_json() {
        use serde::{Deserialize, Serialize, Value};
        let stats = ServiceStats {
            tenants: 2,
            connections: 3,
            frames_served: 99,
            worker_budget: 8,
            workers_claimed: 5,
            per_tenant: vec![TenantStats {
                name: "t1".into(),
                task: "connectivity".into(),
                n: 100,
                updates_ingested: 1000,
                deltas_applied: 4,
                busy_rejections: 1,
                decode_cache_hits: 700,
                decode_cache_invalidations: 12,
                cached_answer_ns: 48_000,
                workers: 2,
                bytes_resident: 1 << 20,
                lane_bytes_resident: 3 << 18,
                lane_overflows: 0,
                dirty: true,
            }],
        };
        let json = stats.to_value().to_json();
        let back = ServiceStats::from_value(&Value::from_json(&json).unwrap()).unwrap();
        assert_eq!(back, stats);
    }
}
