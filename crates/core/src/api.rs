//! Runtime dispatch over every sketch in the crate: one config struct in,
//! one answer enum out.
//!
//! The static side of the unified interface is [`gs_sketch::LinearSketch`];
//! this module adds the dynamic side for callers (the CLI, services,
//! coordinators) that pick the algorithm at runtime:
//!
//! * [`SketchSpec`] — a serializable description of *which* sketch to run
//!   (task, `n`, `ε`, `k`, max weight, seed). [`SketchSpec::build`]
//!   constructs the sketch; two sites with equal specs build mergeable
//!   sketches.
//! * [`AnySketch`] — an enum over every sketch type, itself a
//!   [`LinearSketch`] (feed it, merge it, ship it through
//!   [`gs_stream::distributed::sketch_distributed`] like any other sketch).
//! * [`SketchAnswer`] — the decoded result, serializable and renderable as
//!   plain text lines.
//!
//! ```
//! use graph_sketches::api::{SketchAnswer, SketchSpec, SketchTask};
//! use gs_sketch::{EdgeUpdate, LinearSketch};
//!
//! let spec = SketchSpec::new(SketchTask::Connectivity, 4).with_seed(7);
//! let mut sketch = spec.build();
//! sketch.absorb(&[
//!     EdgeUpdate::insert(0, 1),
//!     EdgeUpdate::insert(1, 2),
//!     EdgeUpdate::insert(2, 3),
//!     EdgeUpdate::delete(1, 2),
//! ]);
//! match sketch.decode() {
//!     SketchAnswer::Connectivity { components, .. } => assert_eq!(components, 2),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

use crate::connectivity::{Forest, ForestParams};
use crate::extras::{BipartitenessSketch, KConnectivitySketch};
use crate::kedge::SubtractMode;
use crate::mincut::MinCutParams;
use crate::mst::{MstParams, MstSketch};
use crate::simple_sparsify::SimpleSparsifyParams;
use crate::sparsify::SparsifyParams;
use crate::subgraphs::SubgraphParams;
use crate::weighted::WeightedParams;
use crate::{
    ForestSketch, KEdgeConnectSketch, MinCutSketch, SimpleSparsifySketch, SparsifySketch,
    SubgraphSketch, WeightedSparsifySketch,
};
use gs_field::M61;
use gs_graph::subgraph::Pattern;
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::lane::LaneOverflow;
use gs_sketch::par::DecodePlan;
use gs_sketch::{DecodeCache, EdgeUpdate, LinearSketch, Mergeable};
use gs_stream::distributed::{sketch_central, sketch_distributed};
use serde::{Deserialize, Serialize, Value};

/// Which structural question a sketch answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SketchTask {
    /// Components + spanning forest (AGM substrate).
    Connectivity,
    /// Bipartiteness via the double cover.
    Bipartite,
    /// (1+ε)-approximate minimum cut (Fig. 1).
    MinCut,
    /// ε-cut-sparsifier, Fig. 2 flavor.
    SimpleSparsify,
    /// ε-cut-sparsifier, Fig. 3 flavor (the paper's main result).
    Sparsify,
    /// ε-cut-sparsifier for weighted streams (§3.5).
    WeightedSparsify,
    /// Order-k subgraph fractions γ_H (§4).
    Subgraphs,
    /// (1+ε)-approximate minimum spanning forest.
    Mst,
    /// k-edge-connectivity test.
    KConnect,
    /// The k-EDGECONNECT witness subgraph itself (Theorem 2.3).
    KEdgeWitness,
}

impl SketchTask {
    /// Every task, in CLI listing order.
    pub const ALL: [SketchTask; 10] = [
        SketchTask::Connectivity,
        SketchTask::Bipartite,
        SketchTask::MinCut,
        SketchTask::SimpleSparsify,
        SketchTask::Sparsify,
        SketchTask::WeightedSparsify,
        SketchTask::Subgraphs,
        SketchTask::Mst,
        SketchTask::KConnect,
        SketchTask::KEdgeWitness,
    ];

    /// The CLI command name.
    pub fn command(&self) -> &'static str {
        match self {
            SketchTask::Connectivity => "connectivity",
            SketchTask::Bipartite => "bipartite",
            SketchTask::MinCut => "mincut",
            SketchTask::SimpleSparsify => "simple-sparsify",
            SketchTask::Sparsify => "sparsify",
            SketchTask::WeightedSparsify => "weighted-sparsify",
            SketchTask::Subgraphs => "triangles",
            SketchTask::Mst => "mst",
            SketchTask::KConnect => "kconnected",
            SketchTask::KEdgeWitness => "kedge",
        }
    }

    /// Parses a CLI command name.
    pub fn from_command(cmd: &str) -> Option<SketchTask> {
        SketchTask::ALL.into_iter().find(|t| t.command() == cmd)
    }
}

/// A serializable recipe for constructing a sketch: everything two
/// distributed sites must agree on for their sketches to be mergeable
/// measurements of the same linear projection.
///
/// Fields not meaningful for a task (e.g. `max_weight` for connectivity)
/// are simply unused by [`SketchSpec::build`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SketchSpec {
    /// The structural question.
    pub task: SketchTask,
    /// Vertex count `n` (vertices are `0..n`).
    pub n: usize,
    /// Accuracy target ε (approximation tasks).
    pub eps: f64,
    /// Connectivity threshold (`KConnect` / `KEdgeWitness`) or pattern
    /// order (`Subgraphs`).
    pub k: usize,
    /// Maximum edge weight (`WeightedSparsify` / `Mst`).
    pub max_weight: u64,
    /// Master seed: equal specs ⇒ mergeable sketches.
    pub seed: u64,
}

impl SketchSpec {
    /// A spec with the scaled-down default parameters (see DESIGN.md §3).
    pub fn new(task: SketchTask, n: usize) -> Self {
        SketchSpec {
            task,
            n,
            eps: 0.5,
            k: match task {
                SketchTask::Subgraphs => 3,
                _ => 2,
            },
            max_weight: 1024,
            seed: 0xC0FFEE,
        }
    }

    /// Sets the accuracy target ε.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets `k` (connectivity threshold or pattern order).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the maximum edge weight.
    pub fn with_max_weight(mut self, max_weight: u64) -> Self {
        self.max_weight = max_weight;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every field against the constructor invariants of the
    /// spec's task — the typed boundary for untrusted specs (CLI `--spec`
    /// arguments, wire-file headers). [`SketchSpec::build`] `assert!`s
    /// the same invariants, so a degenerate spec that skips this check
    /// panics (or, for `ε → 0`, saturates a derived size into an
    /// allocation-exhausting huge number) instead of failing with an
    /// error the caller can report.
    ///
    /// Beyond the hard constructor requirements, two plausibility floors
    /// bound what a hostile spec can make the constructors allocate:
    /// `ε ≥ 1e-3` (derived sparsities scale as `ε⁻²`) and
    /// `k ≤ 4096` (a `k-EDGECONNECT` stack is `k` forest sketches).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.n < 2 {
            return Err(SpecError::TooFewVertices { n: self.n });
        }
        let uses_eps = matches!(
            self.task,
            SketchTask::MinCut
                | SketchTask::SimpleSparsify
                | SketchTask::Sparsify
                | SketchTask::WeightedSparsify
                | SketchTask::Subgraphs
                | SketchTask::Mst
        );
        if uses_eps {
            let hi = if self.task == SketchTask::Subgraphs {
                // SubgraphParams::for_eps requires ε ≤ 1 (a fraction).
                1.0
            } else {
                1e3
            };
            if !self.eps.is_finite() || self.eps < 1e-3 || self.eps > hi {
                return Err(SpecError::BadEps {
                    task: self.task,
                    eps: self.eps,
                    max: hi,
                });
            }
        }
        let k_ok = match self.task {
            SketchTask::KConnect | SketchTask::KEdgeWitness => (1..=4096).contains(&self.k),
            // Pattern order: the squash encoding supports 2..=6, and the
            // graph must hold at least one order-k subset.
            SketchTask::Subgraphs => (2..=6).contains(&self.k) && self.n >= self.k,
            _ => true,
        };
        if !k_ok {
            return Err(SpecError::BadK {
                task: self.task,
                k: self.k,
                n: self.n,
            });
        }
        if matches!(self.task, SketchTask::Mst | SketchTask::WeightedSparsify)
            && !(1..=1 << 40).contains(&self.max_weight)
        {
            return Err(SpecError::BadMaxWeight {
                task: self.task,
                max_weight: self.max_weight,
            });
        }
        Ok(())
    }

    /// Validates, then builds: the fallible counterpart of
    /// [`SketchSpec::build`] for specs from untrusted sources. A
    /// degenerate spec returns a typed [`SpecError`] naming the offending
    /// field instead of panicking inside a constructor.
    pub fn try_build(&self) -> Result<AnySketch, SpecError> {
        self.validate()?;
        Ok(self.build())
    }

    /// Constructs the empty sketch this spec describes.
    ///
    /// Each task is built through its bounded constructor, which derives
    /// the bank `s`-lane width from the spec (`LaneWidth::for_bounds`):
    /// Definition-1 tasks declare the unit insert/delete bound, the
    /// weighted tasks their weight-class encodings, the subgraph task its
    /// squash-encoding scale. The declared bound is a derivation hint
    /// only — feeding larger deltas still computes correctly unless a
    /// lane truly overflows at runtime, which poisons the bank and is
    /// reported through [`LinearSketch::lane_overflow`] instead of
    /// silently wrapping. Two sites with equal specs derive equal widths,
    /// so mergeability and the wire formats are unaffected.
    ///
    /// # Panics
    /// Panics if the spec is degenerate (the constructors assert their
    /// invariants). Untrusted callers should use [`SketchSpec::try_build`].
    pub fn build(&self) -> AnySketch {
        // Definition 1 streams carry unit insert/delete updates.
        const UNIT: u64 = 1;
        match self.task {
            SketchTask::Connectivity => AnySketch::Forest(ForestSketch::with_bounds(
                self.n,
                ForestParams::for_n(self.n),
                self.seed,
                UNIT,
            )),
            SketchTask::Bipartite => AnySketch::Bipartite(BipartitenessSketch::with_bounds(
                self.n,
                ForestParams::for_n(2 * self.n),
                self.seed,
                UNIT,
            )),
            SketchTask::MinCut => AnySketch::MinCut(MinCutSketch::with_bounds(
                self.n,
                MinCutParams::scaled(self.n, self.eps),
                self.seed,
                UNIT,
            )),
            SketchTask::SimpleSparsify => {
                AnySketch::SimpleSparsify(SimpleSparsifySketch::with_bounds(
                    self.n,
                    SimpleSparsifyParams::scaled(self.n, self.eps),
                    self.seed,
                    UNIT,
                ))
            }
            SketchTask::Sparsify => AnySketch::Sparsify(SparsifySketch::with_bounds(
                self.n,
                SparsifyParams::scaled(self.n, self.eps),
                self.seed,
                UNIT,
            )),
            SketchTask::WeightedSparsify => {
                // Per-class bounds (class c carries ±w, w < 2^{c+1}) are
                // derived inside the constructor.
                AnySketch::WeightedSparsify(WeightedSparsifySketch::with_bounds(
                    self.n,
                    WeightedParams::scaled(self.n, self.eps, self.max_weight),
                    self.seed,
                ))
            }
            SketchTask::Subgraphs => AnySketch::Subgraph(SubgraphSketch::with_bounds(
                self.n,
                self.k,
                SubgraphParams::for_eps(self.eps),
                self.seed,
                UNIT,
            )),
            SketchTask::Mst => AnySketch::Mst(MstSketch::with_bounds(
                self.n,
                MstParams {
                    eps: self.eps,
                    max_weight: self.max_weight,
                    forest: ForestParams::for_n(self.n),
                },
                self.seed,
                UNIT,
            )),
            SketchTask::KConnect => AnySketch::KConnect(KConnectivitySketch::with_bounds(
                self.n, self.k, self.seed, UNIT,
            )),
            SketchTask::KEdgeWitness => AnySketch::KEdgeWitness(KEdgeConnectSketch::with_bounds(
                self.n,
                self.k,
                ForestParams::for_n(self.n),
                SubtractMode::Unit,
                self.seed,
                UNIT,
            )),
        }
    }

    /// Builds, feeds, and decodes in one call. With `sites > 1` the batch
    /// is hash-partitioned and sketched one thread per site (§1.1); the
    /// answer is identical to `sites = 1` because the sketches are linear.
    pub fn run(&self, updates: &[EdgeUpdate], sites: usize) -> SketchAnswer {
        let sketch = if sites <= 1 {
            sketch_central(updates, || self.build())
        } else {
            sketch_distributed(updates, sites, self.seed ^ 0x517E5, || self.build())
        };
        sketch.decode()
    }

    /// Serializes the spec as JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a spec from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        SketchSpec::from_value(&Value::from_json(text)?)
    }
}

/// Why a [`SketchSpec`] was refused by [`SketchSpec::validate`]: the
/// field that violates its task's constructor invariants (or the
/// documented plausibility floors bounding what a hostile spec can make
/// the constructors allocate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpecError {
    /// Every task needs at least two vertices.
    TooFewVertices {
        /// The declared vertex count.
        n: usize,
    },
    /// The accuracy target is unusable: not finite, below the `1e-3`
    /// floor (derived sparsities scale as `ε⁻²`), or above the task's
    /// ceiling.
    BadEps {
        /// The task whose constructor would reject it.
        task: SketchTask,
        /// The declared ε.
        eps: f64,
        /// The task's ceiling (1 for subgraph fractions, 1e3 otherwise).
        max: f64,
    },
    /// `k` violates the task's range: connectivity thresholds need
    /// `1 ≤ k ≤ 4096`, pattern orders need `2 ≤ k ≤ 6` with `n ≥ k`.
    BadK {
        /// The task whose constructor would reject it.
        task: SketchTask,
        /// The declared `k`.
        k: usize,
        /// The declared vertex count (pattern orders must not exceed it).
        n: usize,
    },
    /// The maximum weight is outside `[1, 2^40]` for a weighted task.
    BadMaxWeight {
        /// The task whose constructor would reject it.
        task: SketchTask,
        /// The declared maximum weight.
        max_weight: u64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::TooFewVertices { n } => {
                write!(f, "spec declares n = {n}; every sketch needs n >= 2")
            }
            SpecError::BadEps { task, eps, max } => write!(
                f,
                "spec declares eps = {eps} for {task:?}; eps must be a finite value in \
                 [0.001, {max}]"
            ),
            SpecError::BadK { task, k, n } => match task {
                SketchTask::Subgraphs => write!(
                    f,
                    "spec declares pattern order k = {k} for {task:?} over n = {n}; the \
                     squash encoding supports 2 <= k <= 6 with n >= k"
                ),
                _ => write!(
                    f,
                    "spec declares k = {k} for {task:?}; the connectivity threshold must \
                     be in [1, 4096]"
                ),
            },
            SpecError::BadMaxWeight { task, max_weight } => write!(
                f,
                "spec declares max_weight = {max_weight} for {task:?}; weights must be in \
                 [1, 2^40]"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Any sketch in the crate, behind one type: the runtime-dispatch
/// counterpart of [`LinearSketch`]. Feed it, merge it (same-task,
/// same-spec sketches only), decode it into a [`SketchAnswer`].
// Variant sizes differ (each holds its own banks/params inline), but
// every instance is long-lived and heap dominates — boxing would just
// add an indirection to every dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AnySketch {
    /// Spanning forest / connectivity.
    Forest(ForestSketch),
    /// Bipartiteness (double cover).
    Bipartite(BipartitenessSketch),
    /// Minimum cut (Fig. 1).
    MinCut(MinCutSketch),
    /// Sparsifier, Fig. 2.
    SimpleSparsify(SimpleSparsifySketch),
    /// Sparsifier, Fig. 3.
    Sparsify(SparsifySketch),
    /// Weighted sparsifier (§3.5).
    WeightedSparsify(WeightedSparsifySketch),
    /// Subgraph fractions (§4).
    Subgraph(SubgraphSketch),
    /// Approximate minimum spanning forest.
    Mst(MstSketch),
    /// k-edge-connectivity test.
    KConnect(KConnectivitySketch),
    /// k-EDGECONNECT witness.
    KEdgeWitness(KEdgeConnectSketch),
}

/// Why two [`AnySketch`]es refused to merge. Returned by
/// [`AnySketch::try_merge`] — the fallible coordinator-path counterpart of
/// the panicking [`Mergeable::merge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The sketches answer different tasks.
    TaskMismatch {
        /// Task of the sketch merged into.
        left: SketchTask,
        /// Task of the sketch merged from.
        right: SketchTask,
    },
    /// The sketches cover different vertex counts.
    SizeMismatch {
        /// `n` of the sketch merged into.
        left: usize,
        /// `n` of the sketch merged from.
        right: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::TaskMismatch { left, right } => {
                write!(f, "cannot merge a {right:?} sketch into a {left:?} sketch")
            }
            MergeError::SizeMismatch { left, right } => write!(
                f,
                "cannot merge a sketch over {right} vertices into one over {left}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

impl AnySketch {
    /// Fallible merge for coordinator paths (the CLI `merge` verb, wire
    /// imports): same-task, same-`n` sketches merge; mismatches return a
    /// [`MergeError`] instead of aborting the process.
    ///
    /// Seed/parameter compatibility *within* a task is not re-derivable
    /// from the sketch state alone; coordinator paths that accept foreign
    /// sketches should compare full [`SketchSpec`]s first
    /// ([`crate::wire::SketchFile::try_merge`] does), after which this
    /// merge cannot panic.
    pub fn try_merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.task() != other.task() {
            return Err(MergeError::TaskMismatch {
                left: self.task(),
                right: other.task(),
            });
        }
        if LinearSketch::n(self) != LinearSketch::n(other) {
            return Err(MergeError::SizeMismatch {
                left: LinearSketch::n(self),
                right: LinearSketch::n(other),
            });
        }
        self.merge(other);
        Ok(())
    }

    /// The task this sketch answers.
    pub fn task(&self) -> SketchTask {
        match self {
            AnySketch::Forest(_) => SketchTask::Connectivity,
            AnySketch::Bipartite(_) => SketchTask::Bipartite,
            AnySketch::MinCut(_) => SketchTask::MinCut,
            AnySketch::SimpleSparsify(_) => SketchTask::SimpleSparsify,
            AnySketch::Sparsify(_) => SketchTask::Sparsify,
            AnySketch::WeightedSparsify(_) => SketchTask::WeightedSparsify,
            AnySketch::Subgraph(_) => SketchTask::Subgraphs,
            AnySketch::Mst(_) => SketchTask::Mst,
            AnySketch::KConnect(_) => SketchTask::KConnect,
            AnySketch::KEdgeWitness(_) => SketchTask::KEdgeWitness,
        }
    }
}

impl Mergeable for AnySketch {
    /// # Panics
    /// Panics if the two sketches answer different tasks (in addition to
    /// the per-sketch seed/parameter compatibility checks).
    fn merge(&mut self, other: &Self) {
        match (self, other) {
            (AnySketch::Forest(a), AnySketch::Forest(b)) => a.merge(b),
            (AnySketch::Bipartite(a), AnySketch::Bipartite(b)) => a.merge(b),
            (AnySketch::MinCut(a), AnySketch::MinCut(b)) => a.merge(b),
            (AnySketch::SimpleSparsify(a), AnySketch::SimpleSparsify(b)) => a.merge(b),
            (AnySketch::Sparsify(a), AnySketch::Sparsify(b)) => a.merge(b),
            (AnySketch::WeightedSparsify(a), AnySketch::WeightedSparsify(b)) => a.merge(b),
            (AnySketch::Subgraph(a), AnySketch::Subgraph(b)) => a.merge(b),
            (AnySketch::Mst(a), AnySketch::Mst(b)) => a.merge(b),
            (AnySketch::KConnect(a), AnySketch::KConnect(b)) => a.merge(b),
            (AnySketch::KEdgeWitness(a), AnySketch::KEdgeWitness(b)) => a.merge(b),
            (a, b) => panic!(
                "cannot merge a {:?} sketch into a {:?} sketch",
                b.task(),
                a.task()
            ),
        }
    }
}

impl LinearSketch for AnySketch {
    type Output = SketchAnswer;

    fn n(&self) -> usize {
        match self {
            AnySketch::Forest(s) => s.n(),
            AnySketch::Bipartite(s) => s.n(),
            AnySketch::MinCut(s) => s.n(),
            AnySketch::SimpleSparsify(s) => s.n(),
            AnySketch::Sparsify(s) => s.n(),
            AnySketch::WeightedSparsify(s) => s.n(),
            AnySketch::Subgraph(s) => s.n(),
            AnySketch::Mst(s) => LinearSketch::n(s),
            AnySketch::KConnect(s) => s.n(),
            AnySketch::KEdgeWitness(s) => s.n(),
        }
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        match self {
            AnySketch::Forest(s) => s.update_edge(u, v, delta),
            AnySketch::Bipartite(s) => s.update_edge(u, v, delta),
            AnySketch::MinCut(s) => s.update_edge(u, v, delta),
            AnySketch::SimpleSparsify(s) => s.update_edge(u, v, delta),
            AnySketch::Sparsify(s) => s.update_edge(u, v, delta),
            AnySketch::WeightedSparsify(s) => LinearSketch::update_edge(s, u, v, delta),
            AnySketch::Subgraph(s) => s.update_edge(u, v, delta),
            AnySketch::Mst(s) => LinearSketch::update_edge(s, u, v, delta),
            AnySketch::KConnect(s) => s.update_edge(u, v, delta),
            AnySketch::KEdgeWitness(s) => s.update_edge(u, v, delta),
        }
    }

    /// Batched ingestion: dispatches **once per batch** to the concrete
    /// sketch's bank-backed kernel (the path the engine's shard workers
    /// and every `absorb` caller take), instead of once per update.
    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        match self {
            AnySketch::Forest(s) => s.absorb(batch),
            AnySketch::Bipartite(s) => s.absorb(batch),
            AnySketch::MinCut(s) => s.absorb(batch),
            AnySketch::SimpleSparsify(s) => s.absorb(batch),
            AnySketch::Sparsify(s) => s.absorb(batch),
            AnySketch::WeightedSparsify(s) => s.absorb(batch),
            AnySketch::Subgraph(s) => s.absorb(batch),
            AnySketch::Mst(s) => s.absorb(batch),
            AnySketch::KConnect(s) => s.absorb(batch),
            AnySketch::KEdgeWitness(s) => s.absorb(batch),
        }
    }

    /// First poisoned bank across the whole sketch, if any (a lane truly
    /// overflowed at runtime — the sketch's remaining content is
    /// unspecified and its answers must not be trusted).
    fn lane_overflow(&self) -> Option<LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        match self {
            AnySketch::Forest(s) => s.space_bytes(),
            AnySketch::Bipartite(s) => s.space_bytes(),
            AnySketch::MinCut(s) => s.space_bytes(),
            AnySketch::SimpleSparsify(s) => s.space_bytes(),
            AnySketch::Sparsify(s) => s.space_bytes(),
            AnySketch::WeightedSparsify(s) => s.space_bytes(),
            AnySketch::Subgraph(s) => s.space_bytes(),
            AnySketch::Mst(s) => s.space_bytes(),
            AnySketch::KConnect(s) => s.space_bytes(),
            AnySketch::KEdgeWitness(s) => s.space_bytes(),
        }
    }

    fn decode(&self) -> SketchAnswer {
        self.decode_with(&DecodePlan::sequential())
    }

    /// Planned decode — the same dispatch, with the [`DecodePlan`]
    /// threaded into every task's decoder. Bit-identical to
    /// [`LinearSketch::decode`] for every thread count (the decode-parity
    /// suite pins it per task).
    fn decode_with(&self, plan: &DecodePlan) -> SketchAnswer {
        match self {
            AnySketch::Forest(s) => {
                let f = s.decode_with(plan);
                SketchAnswer::Connectivity {
                    components: f.component_count(),
                    connected: f.is_spanning_tree(),
                    forest_edges: f.edges.iter().map(|&(u, v, _)| (u, v)).collect(),
                }
            }
            AnySketch::Bipartite(s) => SketchAnswer::Bipartite {
                bipartite: s.is_bipartite_with(plan),
            },
            AnySketch::MinCut(s) => match s.decode_planned(plan) {
                Some(est) => SketchAnswer::MinCut {
                    resolved: true,
                    value: est.value,
                    level: est.level,
                    side: (0..est.side.len()).filter(|&v| est.side[v]).collect(),
                },
                None => SketchAnswer::MinCut {
                    resolved: false,
                    value: 0,
                    level: 0,
                    side: Vec::new(),
                },
            },
            AnySketch::SimpleSparsify(s) => Self::sparsifier_answer(s.decode_planned(plan)),
            AnySketch::Sparsify(s) => Self::sparsifier_answer(s.decode_planned(plan)),
            AnySketch::WeightedSparsify(s) => Self::sparsifier_answer(s.decode_planned(plan)),
            AnySketch::Subgraph(s) => {
                // Built-in pattern tables exist for orders 3 and 4; other
                // orders report raw samples only (render_lines says so).
                let patterns: Vec<(&str, Pattern)> = match s.k() {
                    3 => vec![
                        ("triangle", Pattern::triangle()),
                        ("path3", Pattern::path3()),
                        ("edge+isolated", Pattern::edge_plus_isolated()),
                    ],
                    4 => vec![("k4", Pattern::k4()), ("c4", Pattern::c4())],
                    _ => Vec::new(),
                };
                // One sample draw serves the count and every pattern
                // estimate (querying the samplers is the expensive part).
                let samples = s.raw_samples_with(plan);
                let gammas = patterns
                    .iter()
                    .map(|(name, p)| {
                        let est = if samples.is_empty() {
                            None
                        } else {
                            let class = p.iso_class();
                            let hits = samples.iter().filter(|m| class.contains(m)).count();
                            Some(hits as f64 / samples.len() as f64)
                        };
                        (name.to_string(), est)
                    })
                    .collect();
                SketchAnswer::Subgraphs {
                    order: s.k(),
                    samples: samples.len(),
                    gammas,
                }
            }
            AnySketch::Mst(s) => {
                let f = s.decode_planned(plan);
                SketchAnswer::Msf {
                    total_weight: f.total_weight(),
                    edges: f.edges().to_vec(),
                }
            }
            AnySketch::KConnect(s) => SketchAnswer::KConnected {
                k: s.k(),
                connected: s.is_k_connected_with(plan),
            },
            AnySketch::KEdgeWitness(s) => {
                let h = s.decode_witness_with(plan);
                SketchAnswer::Witness {
                    edges: h.edges().to_vec(),
                }
            }
        }
    }

    /// Cached decode: the whole answer is memoized against the stamp
    /// vector of every bank in the sketch (per-level banks for min cut
    /// and Fig. 2 witnesses, per-weight-class banks for §3.5, per-strand
    /// recovery banks for the sparsifiers), so a single-bank delta
    /// invalidates exactly once and queries between deltas are pure hits.
    /// Connectivity recomputes go through [`ForestSketch`]'s structural
    /// memo — kept in this cache's detail slot — so only Borůvka groups
    /// whose detector rows carry dirty bits redo their lane sums.
    fn decode_cached(
        &self,
        cache: &mut DecodeCache<SketchAnswer>,
        plan: &DecodePlan,
    ) -> SketchAnswer {
        cache.answer_for(self, |c| match self {
            AnySketch::Forest(s) => {
                let mut inner: DecodeCache<Forest> = c
                    .take_detail()
                    .unwrap_or_else(|| DecodeCache::with_disabled(c.is_disabled()));
                let (reused, recomputed) = (inner.groups_reused(), inner.groups_recomputed());
                let f = s.decode_cached(&mut inner, plan);
                c.note_groups(
                    inner.groups_reused() - reused,
                    inner.groups_recomputed() - recomputed,
                );
                c.set_detail(inner);
                SketchAnswer::Connectivity {
                    components: f.component_count(),
                    connected: f.is_spanning_tree(),
                    forest_edges: f.edges.iter().map(|&(u, v, _)| (u, v)).collect(),
                }
            }
            _ => self.decode_with(plan),
        })
    }
}

impl CellBanked for AnySketch {
    fn banks(&self) -> Vec<&CellBank> {
        match self {
            AnySketch::Forest(s) => s.banks(),
            AnySketch::Bipartite(s) => s.banks(),
            AnySketch::MinCut(s) => s.banks(),
            AnySketch::SimpleSparsify(s) => s.banks(),
            AnySketch::Sparsify(s) => s.banks(),
            AnySketch::WeightedSparsify(s) => s.banks(),
            AnySketch::Subgraph(s) => s.banks(),
            AnySketch::Mst(s) => s.banks(),
            AnySketch::KConnect(s) => s.banks(),
            AnySketch::KEdgeWitness(s) => s.banks(),
        }
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        match self {
            AnySketch::Forest(s) => s.banks_mut(),
            AnySketch::Bipartite(s) => s.banks_mut(),
            AnySketch::MinCut(s) => s.banks_mut(),
            AnySketch::SimpleSparsify(s) => s.banks_mut(),
            AnySketch::Sparsify(s) => s.banks_mut(),
            AnySketch::WeightedSparsify(s) => s.banks_mut(),
            AnySketch::Subgraph(s) => s.banks_mut(),
            AnySketch::Mst(s) => s.banks_mut(),
            AnySketch::KConnect(s) => s.banks_mut(),
            AnySketch::KEdgeWitness(s) => s.banks_mut(),
        }
    }

    fn fingerprints(&self) -> Vec<M61> {
        match self {
            AnySketch::Forest(s) => s.fingerprints(),
            AnySketch::Bipartite(s) => s.fingerprints(),
            AnySketch::MinCut(s) => s.fingerprints(),
            AnySketch::SimpleSparsify(s) => s.fingerprints(),
            AnySketch::Sparsify(s) => s.fingerprints(),
            AnySketch::WeightedSparsify(s) => s.fingerprints(),
            AnySketch::Subgraph(s) => s.fingerprints(),
            AnySketch::Mst(s) => s.fingerprints(),
            AnySketch::KConnect(s) => s.fingerprints(),
            AnySketch::KEdgeWitness(s) => s.fingerprints(),
        }
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        match self {
            AnySketch::Forest(s) => s.fingerprints_mut(),
            AnySketch::Bipartite(s) => s.fingerprints_mut(),
            AnySketch::MinCut(s) => s.fingerprints_mut(),
            AnySketch::SimpleSparsify(s) => s.fingerprints_mut(),
            AnySketch::Sparsify(s) => s.fingerprints_mut(),
            AnySketch::WeightedSparsify(s) => s.fingerprints_mut(),
            AnySketch::Subgraph(s) => s.fingerprints_mut(),
            AnySketch::Mst(s) => s.fingerprints_mut(),
            AnySketch::KConnect(s) => s.fingerprints_mut(),
            AnySketch::KEdgeWitness(s) => s.fingerprints_mut(),
        }
    }
}

impl AnySketch {
    fn sparsifier_answer(h: gs_graph::Graph) -> SketchAnswer {
        SketchAnswer::Sparsifier {
            total_weight: h.total_weight(),
            edges: h.edges().to_vec(),
        }
    }
}

/// A decoded sketch answer: serializable (for `--json` / wire transport)
/// and renderable as plain text lines (for the CLI).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SketchAnswer {
    /// Components and a spanning forest.
    Connectivity {
        /// Number of connected components.
        components: usize,
        /// `true` iff one component spans all vertices.
        connected: bool,
        /// The decoded spanning-forest edges.
        forest_edges: Vec<(usize, usize)>,
    },
    /// Bipartiteness verdict.
    Bipartite {
        /// `true` iff the streamed graph is bipartite (w.h.p.).
        bipartite: bool,
    },
    /// Minimum-cut estimate (Fig. 1 step 3).
    MinCut {
        /// `false` iff every level stayed ≥ k-connected (parameters too
        /// small for this input).
        resolved: bool,
        /// The estimate `2^j · λ(H_j)`.
        value: u64,
        /// The level `j` that resolved.
        level: usize,
        /// Vertices on the witness side of the cut.
        side: Vec<usize>,
    },
    /// A weighted ε-sparsifier.
    Sparsifier {
        /// Total sparsifier weight.
        total_weight: u64,
        /// Weighted sparsifier edges `(u, v, w)`.
        edges: Vec<(usize, usize, u64)>,
    },
    /// Subgraph-fraction estimates (§4).
    Subgraphs {
        /// Pattern order `k`.
        order: usize,
        /// Number of successful ℓ0 samples backing the estimates.
        samples: usize,
        /// `(pattern name, γ_H estimate)`; `None` when no sampler
        /// produced a sample.
        gammas: Vec<(String, Option<f64>)>,
    },
    /// An approximate minimum spanning forest.
    Msf {
        /// Total forest weight (threshold-charged).
        total_weight: u64,
        /// Forest edges `(u, v, w)`.
        edges: Vec<(usize, usize, u64)>,
    },
    /// k-edge-connectivity verdict.
    KConnected {
        /// The threshold tested.
        k: usize,
        /// `true` iff every cut has ≥ k edges (w.h.p.).
        connected: bool,
    },
    /// The k-EDGECONNECT witness subgraph.
    Witness {
        /// Witness edges `(u, v, multiplicity)`.
        edges: Vec<(usize, usize, u64)>,
    },
}

impl SketchAnswer {
    /// Renders the answer as the CLI's human-readable lines.
    pub fn render_lines(&self) -> Vec<String> {
        match self {
            SketchAnswer::Connectivity {
                components,
                connected,
                forest_edges,
            } => vec![
                format!("components: {components}"),
                format!("forest edges: {}", forest_edges.len()),
                format!("connected: {connected}"),
            ],
            SketchAnswer::Bipartite { bipartite } => vec![format!("bipartite: {bipartite}")],
            SketchAnswer::MinCut {
                resolved,
                value,
                level,
                side,
            } => {
                if *resolved {
                    vec![
                        format!("min cut estimate: {value}"),
                        format!("resolved at level: {level}"),
                        format!("witness side ({} vertices): {side:?}", side.len()),
                    ]
                } else {
                    vec!["unresolved: increase levels/k for this input".to_string()]
                }
            }
            SketchAnswer::Sparsifier {
                total_weight,
                edges,
            } => {
                let mut lines = vec![format!(
                    "# eps-sparsifier: {} weighted edges, total weight {total_weight}",
                    edges.len()
                )];
                lines.extend(edges.iter().map(|(u, v, w)| format!("{u} {v} {w}")));
                lines
            }
            SketchAnswer::Subgraphs {
                order,
                samples,
                gammas,
            } => {
                let mut lines = vec![format!("# order-{order} samples: {samples}")];
                if gammas.is_empty() {
                    lines.push(format!(
                        "no built-in pattern table for order {order} (orders 3 and 4 \
                         have one); raw samples only"
                    ));
                }
                lines.extend(gammas.iter().map(|(name, est)| match est {
                    Some(v) => format!("gamma[{name}]: {v:.4}"),
                    None => format!("gamma[{name}]: no non-empty samples"),
                }));
                lines
            }
            SketchAnswer::Msf {
                total_weight,
                edges,
            } => {
                let mut lines = vec![format!(
                    "# approx MSF: {} edges, total weight {total_weight}",
                    edges.len()
                )];
                lines.extend(edges.iter().map(|(u, v, w)| format!("{u} {v} {w}")));
                lines
            }
            SketchAnswer::KConnected { k, connected } => {
                vec![format!("{k}-edge-connected: {connected}")]
            }
            SketchAnswer::Witness { edges } => {
                let mut lines = vec![format!("# k-EDGECONNECT witness: {} edges", edges.len())];
                lines.extend(edges.iter().map(|(u, v, w)| format!("{u} {v} {w}")));
                lines
            }
        }
    }

    /// Serializes the answer as JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::gen;
    use gs_stream::GraphStream;

    fn churn_updates(n: usize, p: f64, seed: u64) -> Vec<EdgeUpdate> {
        let g = gen::gnp(n, p, seed);
        GraphStream::with_churn(&g, 200, seed ^ 0xD1).edge_updates()
    }

    #[test]
    fn every_task_builds_feeds_and_decodes() {
        let updates = churn_updates(12, 0.3, 1);
        for task in SketchTask::ALL {
            let spec = SketchSpec::new(task, 12).with_eps(0.75);
            let mut sketch = spec.build();
            assert_eq!(sketch.task(), task);
            assert_eq!(LinearSketch::n(&sketch), 12);
            assert!(sketch.space_bytes() > 0, "{task:?} reports no space");
            sketch.absorb(&updates);
            let answer = sketch.decode();
            assert!(
                !answer.render_lines().is_empty(),
                "{task:?} renders nothing"
            );
            // The JSON body must parse back as a value.
            let v = Value::from_json(&answer.to_json()).expect("valid JSON");
            assert!(v.as_map().is_some());
        }
    }

    #[test]
    fn distributed_run_equals_central_run() {
        let updates = churn_updates(14, 0.3, 2);
        for task in SketchTask::ALL {
            let spec = SketchSpec::new(task, 14).with_eps(0.75).with_seed(0xFEED);
            let central = spec.run(&updates, 1);
            for sites in [2, 4, 9] {
                assert_eq!(
                    spec.run(&updates, sites),
                    central,
                    "{task:?} @ {sites} sites"
                );
            }
        }
    }

    #[test]
    fn batched_absorb_is_bit_identical_for_every_task() {
        // Every absorb override (forest plan-sharing, per-level /
        // per-threshold / per-class batch partitioning, recovery plan
        // reuse) must equal the per-update path bit for bit — this is the
        // law that lets the engine's shard workers take the batched
        // kernel without changing any answer.
        for task in SketchTask::ALL {
            let spec = SketchSpec::new(task, 12).with_eps(0.75).with_max_weight(64);
            let updates: Vec<EdgeUpdate> = match task {
                SketchTask::Mst | SketchTask::WeightedSparsify => (0..40)
                    .flat_map(|i| {
                        let (u, v, w) = (i % 12, (i + 1 + i % 11) % 12, 1 + (i * 7) % 64);
                        let ins = EdgeUpdate::weighted(u, v, w as u64, 1);
                        // Delete every third edge again (same weight).
                        (u != v).then_some(ins).into_iter().chain(
                            (u != v && i % 3 == 0)
                                .then_some(EdgeUpdate::weighted(u, v, w as u64, -1)),
                        )
                    })
                    .collect(),
                _ => churn_updates(12, 0.4, 7 + task as u64),
            };
            let mut batched = spec.build();
            batched.absorb(&updates);
            let mut looped = spec.build();
            for up in &updates {
                looped.update_edge(up.u, up.v, up.delta);
            }
            assert_eq!(batched, looped, "{task:?}: batched != looped");
        }
    }

    #[test]
    fn degenerate_n_is_refused_for_every_task() {
        for task in SketchTask::ALL {
            for n in [0, 1] {
                let spec = SketchSpec::new(task, n);
                assert_eq!(
                    spec.try_build().err(),
                    Some(SpecError::TooFewVertices { n }),
                    "{task:?} accepted n = {n}"
                );
            }
        }
    }

    #[test]
    fn degenerate_parameters_are_refused_with_typed_errors() {
        // k = 0 connectivity threshold (panicked pre-validation).
        for task in [SketchTask::KConnect, SketchTask::KEdgeWitness] {
            assert!(matches!(
                SketchSpec::new(task, 8).with_k(0).try_build(),
                Err(SpecError::BadK { .. })
            ));
            assert!(matches!(
                SketchSpec::new(task, 8).with_k(1 << 20).try_build(),
                Err(SpecError::BadK { .. })
            ));
        }
        // Pattern orders outside the squash encoding, or above n.
        for k in [0, 1, 7] {
            assert!(matches!(
                SketchSpec::new(SketchTask::Subgraphs, 8)
                    .with_k(k)
                    .try_build(),
                Err(SpecError::BadK { .. })
            ));
        }
        assert!(matches!(
            SketchSpec::new(SketchTask::Subgraphs, 3)
                .with_k(4)
                .try_build(),
            Err(SpecError::BadK { .. })
        ));
        // Degenerate eps: zero (saturated derived sizes to usize::MAX
        // pre-validation), negative, NaN, and absurd extremes.
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e-9, 1e9] {
            for task in [SketchTask::MinCut, SketchTask::Sparsify, SketchTask::Mst] {
                assert!(
                    matches!(
                        SketchSpec::new(task, 8).with_eps(eps).try_build(),
                        Err(SpecError::BadEps { .. })
                    ),
                    "{task:?} accepted eps = {eps}"
                );
            }
        }
        // Subgraph fractions additionally require eps <= 1.
        assert!(matches!(
            SketchSpec::new(SketchTask::Subgraphs, 8)
                .with_eps(2.0)
                .try_build(),
            Err(SpecError::BadEps { .. })
        ));
        // Weighted tasks: zero max weight (panicked pre-validation) and
        // weights past the 2^40 plausibility bound.
        for task in [SketchTask::Mst, SketchTask::WeightedSparsify] {
            for w in [0u64, 1 << 50] {
                assert!(
                    matches!(
                        SketchSpec::new(task, 8).with_max_weight(w).try_build(),
                        Err(SpecError::BadMaxWeight { .. })
                    ),
                    "{task:?} accepted max_weight = {w}"
                );
            }
        }
        // Errors render a human-readable field diagnosis.
        let e = SketchSpec::new(SketchTask::Mst, 8)
            .with_max_weight(0)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("max_weight"), "message: {e}");
    }

    #[test]
    fn default_specs_validate_for_every_task() {
        for task in SketchTask::ALL {
            let spec = SketchSpec::new(task, 12);
            assert_eq!(spec.validate(), Ok(()), "{task:?} default spec refused");
            assert!(spec.try_build().is_ok());
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SketchSpec::new(SketchTask::MinCut, 64)
            .with_eps(0.25)
            .with_k(5)
            .with_max_weight(128)
            .with_seed(42);
        let text = spec.to_json();
        assert_eq!(SketchSpec::from_json(&text).unwrap(), spec);
    }

    #[test]
    fn command_names_round_trip() {
        for task in SketchTask::ALL {
            assert_eq!(SketchTask::from_command(task.command()), Some(task));
        }
        assert_eq!(SketchTask::from_command("nope"), None);
    }

    #[test]
    #[should_panic]
    fn cross_task_merge_refused() {
        let mut a = SketchSpec::new(SketchTask::Connectivity, 8).build();
        let b = SketchSpec::new(SketchTask::Bipartite, 8).build();
        a.merge(&b);
    }

    #[test]
    fn weighted_tasks_take_value_carrying_updates() {
        let updates = vec![
            EdgeUpdate::weighted(0, 1, 5, 1),
            EdgeUpdate::weighted(1, 2, 17, 1),
            EdgeUpdate::weighted(2, 3, 3, 1),
            EdgeUpdate::weighted(0, 1, 5, -1),
        ];
        let spec = SketchSpec::new(SketchTask::WeightedSparsify, 4).with_max_weight(32);
        let mut sketch = spec.build();
        sketch.absorb(&updates);
        match sketch.decode() {
            SketchAnswer::Sparsifier { edges, .. } => {
                // (0,1) cancelled; the two surviving low-connectivity edges
                // freeze at level 0 with exact weights.
                assert_eq!(edges, vec![(1, 2, 17), (2, 3, 3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
