//! Small-subgraph estimation (§4, Theorem 4.1, Fig. 4).
//!
//! The sketch is an ℓ0-sampling structure over `squash(X_G)`:
//! the columns of `X_G` are the `C(n,k)` order-`k` vertex subsets, the
//! rows the `C(k,2)` vertex pairs inside a subset, and
//! *"adding 1 to the (i,j)-th entry of X corresponds to adding 2^i to the
//! j-th entry of squash(X)"*. An ℓ0-sample of `squash(X_G)` is therefore a
//! uniformly random **non-empty induced order-k subgraph**, delivered as
//! its edge bitmask; `γ_H(G)` is estimated as the fraction of samples
//! whose bitmask falls in the isomorphism class `A_H`. By Chernoff,
//! `O(ε⁻² log δ⁻¹)` samples give an additive-ε estimate (Theorem 4.1).
//!
//! Cost model: one edge update touches `C(n−2, k−2)` columns (every subset
//! containing both endpoints), i.e. `O(n^{k−2})` sampler updates — the
//! price of maintaining a linear measurement of an `O(n^k)`-dimensional
//! object. The space, however, is only `O(ε⁻² polylog)` — the paper's
//! point.
//!
//! Multiplicities must stay 0/1 (simple graphs): the squash encoding is a
//! *sum*, so a multiplicity-2 edge in row 0 is indistinguishable from a
//! multiplicity-1 edge in row 1. Dynamic streams are fine as long as the
//! *net* graph stays simple, which is Definition 1's regime for γ_H.

use gs_field::{BackendKind, M61};
use gs_graph::subgraph::Pattern;
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::domain::{pair_slot, subset_domain, subset_rank};
use gs_sketch::par::{par_map, DecodePlan};
use gs_sketch::{DecodeCache, L0Result, L0Sampler, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Parameters for [`SubgraphSketch`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubgraphParams {
    /// Number of independent ℓ0 samplers `s = O(ε⁻² log δ⁻¹)`.
    pub samples: usize,
    /// Per-level recovery size inside each sampler.
    pub sampler_sparsity: usize,
    /// Randomness regime.
    pub kind: BackendKind,
}

impl SubgraphParams {
    /// `s = ⌈c/ε²⌉` samplers with `c = 1` (Theorem 4.1's `O(ε⁻²)`,
    /// δ fixed at a constant; multiply `samples` by `log δ⁻¹` for smaller
    /// error probabilities).
    pub fn for_eps(eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0);
        SubgraphParams {
            samples: (1.0 / (eps * eps)).ceil() as usize,
            sampler_sparsity: 8,
            kind: BackendKind::Oracle,
        }
    }
}

/// Linear sketch for estimating γ_H over order-`k` patterns.
///
/// ```
/// use graph_sketches::SubgraphSketch;
/// use gs_graph::{gen, subgraph::Pattern};
/// let g = gen::complete(8); // all order-3 subgraphs are triangles
/// let mut s = SubgraphSketch::new(8, 3, 0.25, 1);
/// for &(u, v, _) in g.edges() { s.update_edge(u, v, 1); }
/// assert_eq!(s.estimate_gamma(&Pattern::triangle()), Some(1.0));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubgraphSketch {
    n: usize,
    k: usize,
    params: SubgraphParams,
    seed: u64,
    samplers: Vec<L0Sampler>,
}

impl SubgraphSketch {
    /// A sketch for order-`k` subgraphs of `n`-vertex graphs with accuracy
    /// target ε.
    pub fn new(n: usize, k: usize, eps: f64, seed: u64) -> Self {
        Self::with_params(n, k, SubgraphParams::for_eps(eps), seed)
    }

    /// Full-control constructor.
    pub fn with_params(n: usize, k: usize, params: SubgraphParams, seed: u64) -> Self {
        Self::build(n, k, params, seed, None)
    }

    /// As [`SubgraphSketch::with_params`], deriving the samplers' `s`-lane
    /// width from the caller's bound on `|delta|` per stream update. The
    /// squash encoding scales a stream delta by up to `2^{C(k,2)−1}` (one
    /// bit per possible pattern edge), so the coordinate-level bound is
    /// `max_abs_delta · 2^{C(k,2)−1}` (see `LaneWidth::for_bounds`).
    pub fn with_bounds(
        n: usize,
        k: usize,
        params: SubgraphParams,
        seed: u64,
        max_abs_delta: u64,
    ) -> Self {
        let slots = (k * (k - 1) / 2) as u32;
        let coord_bound = max_abs_delta.saturating_mul(1u64 << (slots - 1).min(62));
        Self::build(n, k, params, seed, Some(coord_bound))
    }

    fn build(n: usize, k: usize, params: SubgraphParams, seed: u64, bound: Option<u64>) -> Self {
        assert!((2..=6).contains(&k), "pattern order {k} unsupported");
        assert!(n >= k, "graph smaller than pattern order");
        assert!(params.samples >= 1);
        let domain = subset_domain(n, k);
        let samplers = (0..params.samples)
            .map(|i| {
                let sseed = seed ^ (0x4B_0000 + i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                match bound {
                    Some(d) => L0Sampler::with_bounds(
                        domain,
                        params.sampler_sparsity,
                        sseed,
                        params.kind,
                        d,
                    ),
                    None => {
                        L0Sampler::with_params(domain, params.sampler_sparsity, sseed, params.kind)
                    }
                }
            })
            .collect();
        SubgraphSketch {
            n,
            k,
            params,
            seed,
            samplers,
        }
    }

    /// Vertex count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pattern order `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of samplers.
    pub fn sample_count(&self) -> usize {
        self.samplers.len()
    }

    /// Sketch size in 1-sparse cells across all samplers.
    pub fn cell_count(&self) -> usize {
        self.samplers.iter().map(|s| s.cell_count()).sum()
    }

    /// Applies a stream update of edge `{u,v}` to every column containing
    /// both endpoints (Fig. 4's linear encoding).
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        assert!(u != v && u < self.n && v < self.n);
        if delta == 0 {
            return;
        }
        let k = self.k;
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        // Enumerate the C(n−2, k−2) completions of {u,v} to a k-subset.
        let mut others: Vec<usize> = Vec::with_capacity(k - 2);
        self.for_each_completion(lo, hi, 0, &mut others, delta);
    }

    fn for_each_completion(
        &mut self,
        lo: usize,
        hi: usize,
        start: usize,
        others: &mut Vec<usize>,
        delta: i64,
    ) {
        if others.len() == self.k - 2 {
            // Assemble the sorted subset and locate the (lo, hi) pair.
            let mut subset: Vec<usize> = others.clone();
            subset.push(lo);
            subset.push(hi);
            subset.sort_unstable();
            let pa = subset.iter().position(|&x| x == lo).expect("lo present");
            let pb = subset.iter().position(|&x| x == hi).expect("hi present");
            let col = subset_rank(&subset);
            let slot = pair_slot(pa, pb, self.k);
            let val = delta * (1i64 << slot);
            for s in &mut self.samplers {
                s.update(col, val);
            }
            return;
        }
        for w in start..self.n {
            if w == lo || w == hi {
                continue;
            }
            others.push(w);
            self.for_each_completion(lo, hi, w + 1, others, delta);
            others.pop();
        }
    }

    /// Draws the available column samples: `(bitmask, sampler index)` per
    /// successful sampler. Failed samplers are skipped (Theorem 2.1's δ).
    pub fn raw_samples(&self) -> Vec<u64> {
        self.raw_samples_with(&DecodePlan::sequential())
    }

    /// [`SubgraphSketch::raw_samples`] under a [`DecodePlan`]: the
    /// samplers are independent ℓ0 queries, so they fan out across the
    /// plan's threads; successful samples come back in sampler order,
    /// bit-identical to the sequential draw.
    pub fn raw_samples_with(&self, plan: &DecodePlan) -> Vec<u64> {
        par_map(&self.samplers, plan.threads(), |_, s| match s.query() {
            L0Result::Sample(_, val) if val > 0 => Some(val as u64),
            _ => None,
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Estimates `γ_H(G)` for a pattern of order `k`: the fraction of
    /// non-empty induced order-k subgraphs isomorphic to `H`, within ±ε
    /// with constant probability (Theorem 4.1). Returns `None` when no
    /// sampler produced a sample (empty graph or total sampler failure).
    pub fn estimate_gamma(&self, pattern: &Pattern) -> Option<f64> {
        assert_eq!(pattern.order(), self.k, "pattern order mismatch");
        let class = pattern.iso_class();
        self.estimate_class_fraction(&class)
    }

    /// Estimates the fraction of samples whose bitmask lies in an explicit
    /// value class `A_H` (§4: "estimating γ_H(G) is equivalent to
    /// estimating the fraction of non-zero entries that are in A_H").
    pub fn estimate_class_fraction(&self, class: &BTreeSet<u64>) -> Option<f64> {
        let samples = self.raw_samples();
        if samples.is_empty() {
            return None;
        }
        let hits = samples.iter().filter(|m| class.contains(m)).count();
        Some(hits as f64 / samples.len() as f64)
    }

    /// Estimates several patterns from the *same* samples (they share the
    /// sampling noise, which is what the paper's single-structure design
    /// gives you for free).
    pub fn estimate_many(&self, patterns: &[Pattern]) -> Vec<Option<f64>> {
        let samples = self.raw_samples();
        patterns
            .iter()
            .map(|p| {
                assert_eq!(p.order(), self.k);
                if samples.is_empty() {
                    return None;
                }
                let class = p.iso_class();
                let hits = samples.iter().filter(|m| class.contains(m)).count();
                Some(hits as f64 / samples.len() as f64)
            })
            .collect()
    }
}

impl Mergeable for SubgraphSketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "merging subgraph sketches with different seeds"
        );
        assert_eq!(self.n, other.n);
        assert_eq!(self.k, other.k);
        for (a, b) in self.samplers.iter_mut().zip(&other.samplers) {
            a.merge(b);
        }
    }
}

impl CellBanked for SubgraphSketch {
    fn banks(&self) -> Vec<&CellBank> {
        self.samplers.iter().flat_map(|s| s.banks()).collect()
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        self.samplers
            .iter_mut()
            .flat_map(|s| s.banks_mut())
            .collect()
    }

    fn fingerprints(&self) -> Vec<M61> {
        self.samplers
            .iter()
            .flat_map(|s| s.fingerprints())
            .collect()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        self.samplers
            .iter_mut()
            .flat_map(|s| s.fingerprints_mut())
            .collect()
    }
}

impl LinearSketch for SubgraphSketch {
    type Output = Vec<u64>;

    fn n(&self) -> usize {
        self.n
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        SubgraphSketch::update_edge(self, u, v, delta);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    /// Decodes the raw column samples (induced-subgraph bitmasks); feed
    /// them to [`SubgraphSketch::estimate_gamma`] /
    /// [`SubgraphSketch::estimate_class_fraction`] for pattern fractions.
    fn decode(&self) -> Vec<u64> {
        self.raw_samples()
    }

    fn decode_with(&self, plan: &DecodePlan) -> Vec<u64> {
        self.raw_samples_with(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<Vec<u64>>, plan: &DecodePlan) -> Vec<u64> {
        cache.answer_for(self, |_| self.raw_samples_with(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::subgraph::{exact_counts, gamma};
    use gs_graph::{gen, Graph};
    use gs_stream::GraphStream;

    fn sketch_of(g: &Graph, k: usize, eps: f64, seed: u64) -> SubgraphSketch {
        let mut s = SubgraphSketch::new(g.n(), k, eps, seed);
        for &(u, v, _) in g.edges() {
            s.update_edge(u, v, 1);
        }
        s
    }

    #[test]
    fn complete_graph_is_all_triangles() {
        let g = gen::complete(10);
        let s = sketch_of(&g, 3, 0.25, 1);
        let est = s.estimate_gamma(&Pattern::triangle()).expect("samples");
        assert_eq!(est, 1.0, "every sample of K_10 must be a triangle");
    }

    #[test]
    fn triangle_free_graph_estimates_zero() {
        let g = gen::cycle(12);
        let s = sketch_of(&g, 3, 0.25, 2);
        let est = s.estimate_gamma(&Pattern::triangle()).expect("samples");
        assert_eq!(est, 0.0);
    }

    #[test]
    fn empty_graph_has_no_samples() {
        let s = SubgraphSketch::new(8, 3, 0.5, 3);
        assert!(s.estimate_gamma(&Pattern::triangle()).is_none());
    }

    #[test]
    fn gamma_estimate_within_additive_eps() {
        let g = gen::gnp(18, 0.45, 5);
        let eps = 0.2;
        // Average several seeds: Theorem 4.1 is a constant-probability
        // guarantee per sketch.
        let mut errs = Vec::new();
        for seed in 0..5 {
            let s = sketch_of(&g, 3, eps, 100 + seed);
            let est = s.estimate_gamma(&Pattern::triangle()).expect("samples");
            errs.push((est - gamma(&g, &Pattern::triangle())).abs());
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median <= eps, "median additive error {median} > ε = {eps}");
    }

    #[test]
    fn class_fractions_sum_to_one() {
        // The three order-3 classes partition every sample.
        let g = gen::gnp(16, 0.4, 7);
        let s = sketch_of(&g, 3, 0.25, 9);
        let ests = s.estimate_many(&[
            Pattern::triangle(),
            Pattern::path3(),
            Pattern::edge_plus_isolated(),
        ]);
        let total: f64 = ests.iter().map(|e| e.expect("samples")).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    }

    #[test]
    fn deletions_cancel_in_squash_space() {
        // Insert a dense graph, delete everything except one triangle.
        let n = 10;
        let full = gen::complete(n);
        let mut s = SubgraphSketch::new(n, 3, 0.5, 11);
        for &(u, v, _) in full.edges() {
            s.update_edge(u, v, 1);
        }
        for &(u, v, _) in full.edges() {
            let keep = u < 3 && v < 3;
            if !keep {
                s.update_edge(u, v, -1);
            }
        }
        let est = s.estimate_gamma(&Pattern::triangle()).expect("samples");
        // Exactly one triangle on {0,1,2}: γ = 1/7 (see gs-graph tests).
        let exact = 1.0 / 7.0;
        assert!(
            (est - exact).abs() <= 0.35,
            "estimate {est} too far from {exact}"
        );
    }

    #[test]
    fn order4_patterns() {
        let g = gen::complete(8);
        let s = sketch_of(&g, 4, 0.34, 13);
        assert_eq!(s.estimate_gamma(&Pattern::k4()).expect("samples"), 1.0);
        assert_eq!(s.estimate_gamma(&Pattern::c4()).expect("samples"), 0.0);
    }

    #[test]
    fn churn_stream_equivalent_to_inserts() {
        let g = gen::gnp(12, 0.4, 15);
        let mk = |stream: &GraphStream| {
            let mut s = SubgraphSketch::new(12, 3, 0.34, 17);
            stream.replay(|u, v, d| s.update_edge(u, v, d));
            s.raw_samples()
        };
        let a = mk(&GraphStream::inserts_of(&g));
        let b = mk(&GraphStream::with_churn(&g, 150, 19));
        assert_eq!(a, b, "sketch state must be order/churn independent");
    }

    #[test]
    fn merge_is_linear() {
        let g = gen::gnp(12, 0.5, 21);
        let mut a = SubgraphSketch::new(12, 3, 0.34, 23);
        let mut b = SubgraphSketch::new(12, 3, 0.34, 23);
        let mut central = SubgraphSketch::new(12, 3, 0.34, 23);
        for (i, &(u, v, _)) in g.edges().iter().enumerate() {
            if i % 2 == 0 {
                a.update_edge(u, v, 1);
            } else {
                b.update_edge(u, v, 1);
            }
            central.update_edge(u, v, 1);
        }
        a.merge(&b);
        assert_eq!(a.raw_samples(), central.raw_samples());
    }

    #[test]
    fn exact_counts_agree_with_brute_force_denominator() {
        // Sanity-link between sketch estimates and the §4 definition: the
        // fraction estimated is (matches / non-empty), both enumerable.
        let g = gen::gnp(14, 0.3, 25);
        let (matches, non_empty) = exact_counts(&g, &Pattern::path3());
        assert!(non_empty > 0);
        let s = sketch_of(&g, 3, 0.2, 27);
        let est = s.estimate_gamma(&Pattern::path3()).expect("samples");
        let exact = matches as f64 / non_empty as f64;
        assert!((est - exact).abs() < 0.45, "est {est} vs exact {exact}");
    }
}
