//! The node incidence vectors `x^u` of Eq. 1.
//!
//! For a graph level `G_i`, node `u`'s vector `x^{u,i} ∈ {−1,0,1}^(V 2)`
//! has, for each edge slot `(v,w)` with `v < w`:
//!
//! ```text
//! x^{u,i}[v,w] = +1   if u = v and (v,w) ∈ G_i
//!              = −1   if u = w and (v,w) ∈ G_i
//!              =  0   otherwise
//! ```
//!
//! The point of the sign convention (§3.3): for any vertex set `A`,
//! `support(Σ_{u∈A} x^u) = E(A)`, the edges crossing the cut `(A, V∖A)` —
//! edges inside `A` appear once with `+1` and once with `−1` and cancel.
//! Every cut-query in the paper is this one linear-algebra trick applied
//! to a different sketch of the `x^u`.

/// The signed coefficient of edge `{u, other}` in `x^u` (±1): `+1` when
/// `u` is the smaller endpoint of the slot, `−1` otherwise.
#[inline]
pub fn sign_for(u: usize, other: usize) -> i64 {
    debug_assert!(u != other);
    if u < other {
        1
    } else {
        -1
    }
}

/// Applies a stream update of edge `{u,v}` with multiplicity change
/// `delta` to the two affected node vectors, calling
/// `apply(node, edge_slot_delta)` for each endpoint. `edge_index` must be
/// the slot of `{u,v}` in `[0, C(n,2))`.
#[inline]
pub fn update_both_endpoints(u: usize, v: usize, delta: i64, mut apply: impl FnMut(usize, i64)) {
    apply(u, sign_for(u, v) * delta);
    apply(v, sign_for(v, u) * delta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_sketch::domain::{edge_domain, edge_index};

    #[test]
    fn signs_are_antisymmetric() {
        assert_eq!(sign_for(2, 7), 1);
        assert_eq!(sign_for(7, 2), -1);
        for u in 0..10 {
            for v in 0..10 {
                if u != v {
                    assert_eq!(sign_for(u, v), -sign_for(v, u));
                }
            }
        }
    }

    #[test]
    fn cut_support_cancellation() {
        // Explicitly materialize Σ_{u∈A} x^u for a small graph and verify
        // support = crossing edges (the Eq. 1 property).
        let n = 6;
        let edges = [
            (0usize, 1usize),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (0, 5),
            (1, 4),
        ];
        let a_side = [true, true, false, false, true, false]; // A = {0,1,4}
        let mut sum = vec![0i64; edge_domain(n) as usize];
        for &(u, v) in &edges {
            let idx = edge_index(n, u, v) as usize;
            for (node, d) in [(u, sign_for(u, v)), (v, sign_for(v, u))] {
                if a_side[node] {
                    sum[idx] += d;
                }
            }
        }
        for &(u, v) in &edges {
            let idx = edge_index(n, u, v) as usize;
            let crossing = a_side[u] != a_side[v];
            assert_eq!(
                sum[idx] != 0,
                crossing,
                "edge ({u},{v}) crossing={crossing} sum={}",
                sum[idx]
            );
            if crossing {
                assert_eq!(sum[idx].abs(), 1);
            }
        }
    }

    #[test]
    fn update_both_endpoints_touches_exactly_two() {
        let mut touched = Vec::new();
        update_both_endpoints(3, 8, 2, |node, d| touched.push((node, d)));
        assert_eq!(touched, vec![(3, 2), (8, -2)]);
        touched.clear();
        update_both_endpoints(8, 3, -1, |node, d| touched.push((node, d)));
        assert_eq!(touched, vec![(8, 1), (3, -1)]);
    }
}
