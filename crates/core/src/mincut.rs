//! `MINCUT` (Fig. 1, Theorems 3.2 / 3.6): single-pass (1+ε)-approximate
//! minimum cut on dynamic graph streams.
//!
//! ```text
//! 1. For i ∈ {1,…,2 log n}, let h_i : E → {0,1} be uniform hashes.
//! 2. For i ∈ {0,1,…,2 log n}:
//!    (a) G_i = subgraph with edges e s.t. Π_{j≤i} h_j(e) = 1
//!    (b) H_i = k-EDGECONNECT(G_i),  k = O(ε⁻² log n)
//! 3. Return 2^j λ(H_j) where j = min{ i : λ(H_i) < k }.
//! ```
//!
//! The nested subsampling `Π_{j≤i} h_j(e) = 1` is realized by one hashed
//! word per edge (its leading-zero count is the deepest surviving level —
//! see [`gs_field::Randomness::subsample_level`]). Post-processing (step 3)
//! computes `λ(H_i)` exactly with Stoer–Wagner on the witnesses, per the
//! proof of Theorem 3.2 ("if G_i is not k-edge-connected, we can correctly
//! find a minimum cut in G_i using the corresponding witness").

use crate::connectivity::ForestParams;
use crate::kedge::{KEdgeConnectSketch, SubtractMode};
use gs_field::{BackendKind, HashBackend, Randomness, M61};
use gs_graph::{stoer_wagner, Graph};
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::domain::edge_index;
use gs_sketch::par::{par_map, DecodePlan};
use gs_sketch::{DecodeCache, EdgeUpdate, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};

/// Parameters for [`MinCutSketch`] (and, with a different `k`, the
/// sparsifiers built on the same level machinery).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinCutParams {
    /// Levels `i = 0, …, levels−1`. The paper uses `1 + 2 log₂ n`; fewer
    /// levels suffice whenever `2^levels ≥ m/k` (deeper levels are empty).
    pub levels: usize,
    /// Witness connectivity `k = c·ε⁻²·log₂ n`.
    pub k: usize,
    /// Forest parameters shared by every `k-EDGECONNECT` layer.
    pub forest: ForestParams,
    /// Randomness regime.
    pub kind: BackendKind,
    /// Removal semantics inside `k-EDGECONNECT` (Unit for multigraph
    /// streams, Full for value-carrying weighted streams, §3.5).
    pub subtract: SubtractMode,
}

impl MinCutParams {
    /// Scaled defaults: `k = max(4, ⌈c ε⁻² log₂ n⌉)` with `c = 1` and
    /// `levels = 1 + ⌈log₂ n⌉` (enough for simple graphs where
    /// `m ≤ n²`, since levels beyond `log₂(m/k)` are dead weight).
    pub fn scaled(n: usize, eps: f64) -> Self {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let mut forest = ForestParams::for_n(n);
        // Deep k-EDGECONNECT stacks peel k forests in sequence; a partial
        // forest (detector failure) deflates the witness min cut, so buy
        // one extra repetition here.
        forest.detector_reps = 3;
        MinCutParams {
            levels: 1 + log2n,
            k: ((log2n as f64) / (eps * eps)).ceil().max(4.0) as usize,
            forest,
            kind: BackendKind::Oracle,
            subtract: SubtractMode::Unit,
        }
    }

    /// The paper's constants: `k = 6 ε⁻² log₂ n` (Lemma 3.1's constant)
    /// and `levels = 1 + 2 log₂ n`. Space-hungry; for experiments only.
    pub fn paper(n: usize, eps: f64) -> Self {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as usize;
        MinCutParams {
            levels: 1 + 2 * log2n,
            k: (6.0 * (log2n as f64) / (eps * eps)).ceil() as usize,
            forest: ForestParams::for_n(n),
            kind: BackendKind::Oracle,
            subtract: SubtractMode::Unit,
        }
    }
}

/// Sketch state of Fig. 1.
///
/// ```
/// use graph_sketches::MinCutSketch;
/// use gs_graph::gen;
/// let g = gen::barbell(8, 2); // planted minimum cut of 2
/// let mut s = MinCutSketch::new(g.n(), 0.5, 1);
/// for &(u, v, w) in g.edges() { s.update_edge(u, v, w as i64); }
/// assert_eq!(s.decode().unwrap().value, 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinCutSketch {
    n: usize,
    params: MinCutParams,
    seed: u64,
    /// One `k-EDGECONNECT` per level `G_0 ⊇ G_1 ⊇ …`.
    levels: Vec<KEdgeConnectSketch>,
    /// The shared subsampling hash realizing `h_1, …, h_{2 log n}`.
    level_hash: HashBackend,
}

/// Decoded result of MINCUT.
#[derive(Clone, Debug, PartialEq)]
pub struct MinCutEstimate {
    /// The estimate `2^j · λ(H_j)`.
    pub value: u64,
    /// The level `j` that resolved.
    pub level: usize,
    /// The witness cut side (from `H_j`, valid for `G` w.h.p.).
    pub side: Vec<bool>,
}

impl MinCutSketch {
    /// A MINCUT sketch with [`MinCutParams::scaled`] parameters.
    pub fn new(n: usize, eps: f64, seed: u64) -> Self {
        Self::with_params(n, MinCutParams::scaled(n, eps), seed)
    }

    /// Full-control constructor.
    pub fn with_params(n: usize, params: MinCutParams, seed: u64) -> Self {
        Self::build(n, params, seed, None)
    }

    /// As [`MinCutSketch::with_params`], deriving every level's `s`-lane
    /// width from the caller's bound on `|delta|` per update (see
    /// `LaneWidth::for_bounds`).
    pub fn with_bounds(n: usize, params: MinCutParams, seed: u64, max_abs_delta: u64) -> Self {
        Self::build(n, params, seed, Some(max_abs_delta))
    }

    fn build(n: usize, params: MinCutParams, seed: u64, bound: Option<u64>) -> Self {
        assert!(n >= 2 && params.levels >= 1 && params.k >= 1);
        let levels = (0..params.levels)
            .map(|i| {
                let lseed = seed ^ (0x3C_0000 + i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                match bound {
                    Some(d) => KEdgeConnectSketch::with_bounds(
                        n,
                        params.k,
                        params.forest,
                        params.subtract,
                        lseed,
                        d,
                    ),
                    None => KEdgeConnectSketch::with_mode(
                        n,
                        params.k,
                        params.forest,
                        params.subtract,
                        lseed,
                    ),
                }
            })
            .collect();
        MinCutSketch {
            n,
            params,
            seed,
            levels,
            level_hash: params.kind.backend(seed, 0x3C_FFFF),
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The witness threshold `k`.
    pub fn k(&self) -> usize {
        self.params.k
    }

    /// Applies a stream update. The edge belongs to levels `0..=ℓ(e)`
    /// where `ℓ(e)` is its hashed leading-zero count — the consistent
    /// nested sampling that survives deletions.
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        let idx = edge_index(self.n, u, v);
        let lmax = self
            .level_hash
            .subsample_level(idx, self.params.levels as u32 - 1);
        for i in 0..=lmax as usize {
            self.levels[i].update_edge(u, v, delta);
        }
    }

    /// Batched ingestion: each update's subsampling level is hashed once,
    /// the batch is partitioned into the nested per-level sub-batches
    /// (level `i` sees every update with `ℓ(e) ≥ i`), and each
    /// `k-EDGECONNECT` level runs its own batched kernel.
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        let mut per_level: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); self.params.levels];
        for &up in batch {
            let idx = edge_index(self.n, up.u, up.v);
            let lmax = self
                .level_hash
                .subsample_level(idx, self.params.levels as u32 - 1);
            for level in per_level.iter_mut().take(lmax as usize + 1) {
                level.push(up);
            }
        }
        for (i, share) in per_level.into_iter().enumerate() {
            if !share.is_empty() {
                self.levels[i].absorb_batch(&share);
            }
        }
    }

    /// Sketch size in 1-sparse cells (`O(ε⁻² n log⁴ n)` per Thm 3.2).
    pub fn cell_count(&self) -> usize {
        self.levels.iter().map(|l| l.cell_count()).sum()
    }

    /// The per-level witnesses `H_0, H_1, …` (step 2b), exposed for the
    /// sparsifier of Fig. 2 which shares this machinery.
    pub fn decode_witnesses(&self) -> Vec<Graph> {
        self.decode_witnesses_with(&DecodePlan::sequential())
    }

    /// [`MinCutSketch::decode_witnesses`] under a [`DecodePlan`]: the
    /// subsampling levels are independent witness decodes, so they fan
    /// out across the plan's threads, and any surplus budget (fewer
    /// levels than threads) splits down into each level's own Boruvka
    /// fan-out; results come back in level order, bit-identical to the
    /// sequential loop.
    pub fn decode_witnesses_with(&self, plan: &DecodePlan) -> Vec<Graph> {
        let inner = plan.split(self.levels.len());
        par_map(&self.levels, plan.threads(), |_, l| {
            l.decode_witness_with(&inner)
        })
    }

    /// Per-level detailed witnesses `(u, v, removed_amount)` — the
    /// value-carrying form used by the weighted wrapper (§3.5).
    pub fn decode_witness_edges_per_level(&self) -> Vec<Vec<(usize, usize, i64)>> {
        self.decode_witness_edges_per_level_with(&DecodePlan::sequential())
    }

    /// [`MinCutSketch::decode_witness_edges_per_level`] under a
    /// [`DecodePlan`], one level per thread (level order preserved).
    pub fn decode_witness_edges_per_level_with(
        &self,
        plan: &DecodePlan,
    ) -> Vec<Vec<(usize, usize, i64)>> {
        let inner = plan.split(self.levels.len());
        par_map(&self.levels, plan.threads(), |_, l| {
            l.decode_witness_edges_with(&inner)
        })
    }

    /// Step 3: find `j = min{i : λ(H_i) < k}` and return `2^j λ(H_j)`.
    ///
    /// Returns `None` if every level is still ≥ k-connected (the paper's
    /// parameterization makes this a w.h.p.-impossible event; it signals
    /// that `levels`/`k` were chosen too small for this input).
    pub fn decode(&self) -> Option<MinCutEstimate> {
        self.decode_planned(&DecodePlan::sequential())
    }

    /// [`MinCutSketch::decode`] under a [`DecodePlan`]. The level scan
    /// stays sequential (it early-exits at the first resolving level, so
    /// decoding deeper levels would be wasted work), but each level's
    /// witness decode fans its Boruvka group queries across the plan's
    /// threads.
    pub fn decode_planned(&self, plan: &DecodePlan) -> Option<MinCutEstimate> {
        for (i, level) in self.levels.iter().enumerate() {
            let h = level.decode_witness_with(plan);
            let (lam, side) = if h.m() == 0 {
                (0, {
                    let mut side = vec![false; self.n];
                    side[0] = true;
                    side
                })
            } else {
                stoer_wagner::min_cut(&h)
            };
            if lam < self.params.k as u64 {
                return Some(MinCutEstimate {
                    value: (1u64 << i) * lam,
                    level: i,
                    side,
                });
            }
        }
        None
    }
}

impl Mergeable for MinCutSketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "merging MINCUT sketches with different seeds"
        );
        assert_eq!(self.n, other.n);
        assert_eq!(self.params.levels, other.params.levels);
        assert_eq!(self.params.k, other.params.k);
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b);
        }
    }
}

impl CellBanked for MinCutSketch {
    fn banks(&self) -> Vec<&CellBank> {
        self.levels.iter().flat_map(|l| l.banks()).collect()
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        self.levels.iter_mut().flat_map(|l| l.banks_mut()).collect()
    }

    fn fingerprints(&self) -> Vec<M61> {
        Vec::new()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        Vec::new()
    }
}

impl LinearSketch for MinCutSketch {
    type Output = Option<MinCutEstimate>;

    fn n(&self) -> usize {
        self.n
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        MinCutSketch::update_edge(self, u, v, delta);
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    fn decode(&self) -> Option<MinCutEstimate> {
        MinCutSketch::decode(self)
    }

    fn decode_with(&self, plan: &DecodePlan) -> Option<MinCutEstimate> {
        self.decode_planned(plan)
    }

    fn decode_cached(
        &self,
        cache: &mut DecodeCache<Option<MinCutEstimate>>,
        plan: &DecodePlan,
    ) -> Option<MinCutEstimate> {
        cache.answer_for(self, |_| self.decode_planned(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::gen;
    use gs_stream::GraphStream;

    fn sketch_of(g: &Graph, eps: f64, seed: u64) -> MinCutSketch {
        let mut s = MinCutSketch::new(g.n(), eps, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        s
    }

    #[test]
    fn small_cut_resolved_exactly_at_level_zero() {
        // λ = 2 < k: level 0's witness already determines the cut exactly.
        let g = gen::barbell(8, 2);
        let est = sketch_of(&g, 0.5, 1).decode().expect("resolves");
        assert_eq!(est.level, 0);
        assert_eq!(est.value, 2);
        assert_eq!(g.cut_value(&est.side), 2);
    }

    #[test]
    fn exact_below_k_on_various_graphs() {
        for (g, lam) in [
            (gen::cycle(16), 2u64),
            (gen::barbell(6, 3), 3),
            (gen::grid(4, 5), 2),
        ] {
            let est = sketch_of(&g, 0.5, 7).decode().expect("resolves");
            assert_eq!(est.value, lam, "graph with λ={lam}");
        }
    }

    #[test]
    fn disconnected_graph_reports_zero() {
        let g = Graph::from_edges(10, [(0, 1), (1, 2), (5, 6)]);
        let est = sketch_of(&g, 0.5, 3).decode().expect("resolves");
        assert_eq!(est.value, 0);
    }

    #[test]
    fn large_cut_approximated_within_eps() {
        // K_24: λ = 23 ≥ k at ε = 0.5 (k = 20) → needs subsampled levels.
        let g = gen::complete(24);
        let exact = 23.0;
        let mut ok = 0;
        let trials = 10;
        for seed in 0..trials {
            let est = sketch_of(&g, 0.5, 100 + seed).decode().expect("resolves");
            let ratio = est.value as f64 / exact;
            if (0.4..=1.8).contains(&ratio) {
                ok += 1;
            }
        }
        // Sampling noise at these small n is real; demand a clear majority
        // within a generous band (the bench measures the tight band).
        assert!(ok >= 7, "only {ok}/{trials} within band");
    }

    #[test]
    fn churn_stream_matches_insert_only() {
        let g = gen::barbell(6, 2);
        let insert_only = GraphStream::inserts_of(&g);
        let churn = GraphStream::with_churn(&g, 200, 5);
        let mut a = MinCutSketch::new(g.n(), 0.5, 42);
        insert_only.replay(|u, v, d| a.update_edge(u, v, d));
        let mut b = MinCutSketch::new(g.n(), 0.5, 42);
        churn.replay(|u, v, d| b.update_edge(u, v, d));
        // Same seed, same final graph ⇒ identical sketch ⇒ identical decode.
        assert_eq!(a.decode(), b.decode());
        assert_eq!(a.decode().unwrap().value, 2);
    }

    #[test]
    fn merge_is_linear() {
        let g = gen::cycle(12);
        let stream = GraphStream::inserts_of(&g);
        let parts = stream.split(2, 9);
        let mut a = MinCutSketch::new(12, 0.5, 11);
        parts[0].replay(|u, v, d| a.update_edge(u, v, d));
        let mut b = MinCutSketch::new(12, 0.5, 11);
        parts[1].replay(|u, v, d| b.update_edge(u, v, d));
        a.merge(&b);
        assert_eq!(a.decode().unwrap().value, 2);
    }

    #[test]
    fn paper_params_are_larger() {
        let s = MinCutParams::scaled(64, 0.5);
        let p = MinCutParams::paper(64, 0.5);
        assert!(p.k >= 6 * s.k / 2);
        assert!(p.levels > s.levels);
    }
}
