//! `k-EDGECONNECT` (Theorem 2.3): a sketch-decodable k-edge-connectivity
//! witness.
//!
//! > *"There exists a sketch-based algorithm k-EDGECONNECT that returns a
//! > subgraph H with O(kn) edges such that e ∈ H if e belongs to a cut of
//! > size k or less in the input graph."*
//!
//! Construction (from the authors' SODA'12 paper): maintain `k`
//! independent [`ForestSketch`]es. Decode `F_1` = spanning forest of `G`;
//! then, **using linearity**, delete `F_1`'s edges from the second sketch
//! and decode `F_2` = spanning forest of `G ∖ F_1`; and so on. The union
//! `H = F_1 ∪ … ∪ F_k` has ≤ `k(n−1)` edges and contains every edge of
//! every cut of size ≤ `k` (if fewer than `k` edges cross a cut, each
//! forest either picks one of them or has none left to pick, so all get
//! picked), and every cut of `H` has value ≥ `min(k, its value in G)` —
//! the "witness" property used by Figs. 1 and 2.

use crate::connectivity::{ForestParams, ForestSketch};
use gs_field::M61;
use gs_graph::Graph;
use gs_sketch::bank::{CellBank, CellBanked};
use gs_sketch::par::DecodePlan;
use gs_sketch::{DecodeCache, EdgeUpdate, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};

/// How a recovered forest edge is removed from the next layer's sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SubtractMode {
    /// Remove one unit of multiplicity — multigraph semantics, where `m`
    /// parallel edges can serve `m` different forests (Definition 1
    /// streams with unit updates).
    #[default]
    Unit,
    /// Remove the full sketched value — weighted-edge semantics (§3.5),
    /// where an edge's coordinate holds its weight and the edge is a
    /// single object.
    Full,
}

/// Sketch state for `k-EDGECONNECT`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KEdgeConnectSketch {
    n: usize,
    k: usize,
    seed: u64,
    subtract: SubtractMode,
    forests: Vec<ForestSketch>,
}

impl KEdgeConnectSketch {
    /// A witness sketch for cuts of size up to `k`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        Self::with_params(n, k, ForestParams::for_n(n), seed)
    }

    /// Full-control constructor (the forest parameters are shared by all
    /// `k` layers).
    pub fn with_params(n: usize, k: usize, params: ForestParams, seed: u64) -> Self {
        Self::with_mode(n, k, params, SubtractMode::Unit, seed)
    }

    /// As [`KEdgeConnectSketch::with_params`] with explicit removal
    /// semantics (see [`SubtractMode`]).
    pub fn with_mode(
        n: usize,
        k: usize,
        params: ForestParams,
        subtract: SubtractMode,
        seed: u64,
    ) -> Self {
        Self::build(n, k, params, subtract, seed, None)
    }

    /// As [`KEdgeConnectSketch::with_mode`], deriving every forest
    /// layer's `s`-lane width from the caller's bound on `|delta|` per
    /// update (see `LaneWidth::for_bounds`).
    pub fn with_bounds(
        n: usize,
        k: usize,
        params: ForestParams,
        subtract: SubtractMode,
        seed: u64,
        max_abs_delta: u64,
    ) -> Self {
        Self::build(n, k, params, subtract, seed, Some(max_abs_delta))
    }

    fn build(
        n: usize,
        k: usize,
        params: ForestParams,
        subtract: SubtractMode,
        seed: u64,
        bound: Option<u64>,
    ) -> Self {
        assert!(k >= 1);
        let forests = (0..k)
            .map(|i| {
                let lseed = seed ^ (0xEC_0000 + i as u64).wrapping_mul(0xD134_2543_DE82_EF95);
                match bound {
                    Some(d) => ForestSketch::with_bounds(n, params, lseed, d),
                    None => ForestSketch::with_params(n, params, lseed),
                }
            })
            .collect();
        KEdgeConnectSketch {
            n,
            k,
            seed,
            subtract,
            forests,
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The connectivity threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Applies a stream update (Definition 1) to all layers.
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        for f in &mut self.forests {
            f.update_edge(u, v, delta);
        }
    }

    /// Batched ingestion: each forest layer runs its own batched kernel
    /// (layers have independent seeds, so hash work is per layer, but
    /// within a layer each update hashes once per detector bank).
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        for f in &mut self.forests {
            f.absorb_batch(batch);
        }
    }

    /// Total size in 1-sparse cells (`O(k n log² n)` per Theorem 2.3).
    pub fn cell_count(&self) -> usize {
        self.forests.iter().map(|f| f.cell_count()).sum()
    }

    /// Decodes the witness `H = F_1 ∪ … ∪ F_k` as a multigraph. In
    /// [`SubtractMode::Unit`] an edge appearing in `j` forests has weight
    /// `j`; in [`SubtractMode::Full`] each edge appears once with weight 1
    /// (its sketched value is reported by
    /// [`KEdgeConnectSketch::decode_witness_edges`]).
    pub fn decode_witness(&self) -> Graph {
        self.decode_witness_with(&DecodePlan::sequential())
    }

    /// [`KEdgeConnectSketch::decode_witness`] under a [`DecodePlan`]: the
    /// forest layers peel strictly in sequence (layer `i` subtracts the
    /// edges layers `1..i` used — a data dependency), but each layer's
    /// Boruvka rounds fan their group queries across the plan's threads.
    pub fn decode_witness_with(&self, plan: &DecodePlan) -> Graph {
        Graph::from_edges(
            self.n,
            self.decode_witness_edges_with(plan)
                .into_iter()
                .map(|(u, v, _)| (u, v)),
        )
    }

    /// Decodes the witness as the list of `(u, v, removed_amount)` forest
    /// selections, in discovery order.
    pub fn decode_witness_edges(&self) -> Vec<(usize, usize, i64)> {
        self.decode_witness_edges_with(&DecodePlan::sequential())
    }

    /// [`KEdgeConnectSketch::decode_witness_edges`] under a
    /// [`DecodePlan`] (see [`KEdgeConnectSketch::decode_witness_with`]).
    pub fn decode_witness_edges_with(&self, plan: &DecodePlan) -> Vec<(usize, usize, i64)> {
        let mut removed: Vec<(usize, usize, i64)> = Vec::new();
        for forest in &self.forests {
            let f = if removed.is_empty() {
                forest.decode_with(plan)
            } else {
                // Linearity: subtract every previously used edge, yielding
                // a sketch of G ∖ (F_1 ∪ … ∪ F_{i−1}).
                let mut sk = forest.clone();
                for &(u, v, amt) in &removed {
                    sk.update_edge(u, v, -amt);
                }
                sk.decode_with(plan)
            };
            if f.edges.is_empty() {
                break; // residual graph is empty; later layers add nothing
            }
            removed.extend(f.edges.iter().map(|&(u, v, val)| {
                // The sampled value's sign only records which side of the
                // cut the sample came from; the edge's multiplicity/weight
                // is |val|, and `update_edge` re-applies the Eq. 1 sign
                // convention itself.
                let amt = match self.subtract {
                    SubtractMode::Unit => 1,
                    SubtractMode::Full => val.abs(),
                };
                (u, v, amt)
            }));
        }
        removed
    }
}

impl Mergeable for KEdgeConnectSketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "merging witnesses with different seeds"
        );
        assert_eq!(self.k, other.k);
        assert_eq!(self.n, other.n);
        for (a, b) in self.forests.iter_mut().zip(&other.forests) {
            a.merge(b);
        }
    }
}

impl CellBanked for KEdgeConnectSketch {
    fn banks(&self) -> Vec<&CellBank> {
        self.forests.iter().flat_map(|f| f.banks()).collect()
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        self.forests
            .iter_mut()
            .flat_map(|f| f.banks_mut())
            .collect()
    }

    fn fingerprints(&self) -> Vec<M61> {
        Vec::new()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        Vec::new()
    }
}

impl LinearSketch for KEdgeConnectSketch {
    type Output = Graph;

    fn n(&self) -> usize {
        self.n
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        KEdgeConnectSketch::update_edge(self, u, v, delta);
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.absorb_batch(batch);
    }

    fn lane_overflow(&self) -> Option<gs_sketch::lane::LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    /// Decodes the witness `H = F_1 ∪ … ∪ F_k`.
    fn decode(&self) -> Graph {
        self.decode_witness()
    }

    fn decode_with(&self, plan: &DecodePlan) -> Graph {
        self.decode_witness_with(plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<Graph>, plan: &DecodePlan) -> Graph {
        cache.answer_for(self, |_| self.decode_witness_with(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::{gen, stoer_wagner};
    use gs_stream::GraphStream;

    fn sketch_of(g: &Graph, k: usize, seed: u64) -> KEdgeConnectSketch {
        let mut s = KEdgeConnectSketch::new(g.n(), k, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        s
    }

    #[test]
    fn witness_is_subgraph_with_bounded_size() {
        let g = gen::gnp(30, 0.4, 1);
        let k = 4;
        let h = sketch_of(&g, k, 2).decode_witness();
        for &(u, v, _) in h.edges() {
            assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
        }
        assert!(h.m() <= k * (g.n() - 1), "witness too large: {}", h.m());
    }

    #[test]
    fn witness_contains_small_cut_edges() {
        // Barbell bridges form a cut of size 3 ≤ k: all must be in H.
        let g = gen::barbell(10, 3);
        let h = sketch_of(&g, 5, 3).decode_witness();
        for b in 0..3 {
            assert!(h.has_edge(b, 10 + b), "missing bridge ({b},{})", 10 + b);
        }
    }

    #[test]
    fn witness_preserves_min_cut_when_small() {
        let g = gen::barbell(8, 2);
        let h = sketch_of(&g, 6, 5).decode_witness();
        // λ(G) = 2 < k ⇒ λ(H) = 2 as well.
        assert_eq!(stoer_wagner::min_cut_value(&h), 2);
    }

    #[test]
    fn witness_saturates_at_k_for_large_cuts() {
        // K_12 has λ = 11; a k = 3 witness must still be 3-edge-connected.
        let g = gen::complete(12);
        let h = sketch_of(&g, 3, 7).decode_witness();
        let lam = stoer_wagner::min_cut_value(&h);
        assert!(lam >= 3, "witness min cut {lam} < k");
        assert!(h.m() <= 3 * 11);
    }

    #[test]
    fn layers_decompose_into_forests() {
        // The witness of k layers can have at most k parallel units per
        // edge and at most k(n−1) total units.
        let g = gen::gnp(20, 0.5, 9);
        let k = 3;
        let h = sketch_of(&g, k, 11).decode_witness();
        assert!(h.edges().iter().all(|&(_, _, w)| w <= k as u64));
        assert!(h.total_weight() <= (k * (g.n() - 1)) as u64);
    }

    #[test]
    fn dynamic_stream_end_to_end() {
        let g = gen::barbell(8, 2);
        let stream = GraphStream::with_churn(&g, 300, 13);
        let mut s = KEdgeConnectSketch::new(g.n(), 4, 17);
        stream.replay(|u, v, d| s.update_edge(u, v, d));
        let h = s.decode_witness();
        assert!(
            h.has_edge(0, 8) && h.has_edge(1, 9),
            "bridges lost under churn"
        );
        assert_eq!(stoer_wagner::min_cut_value(&h), 2);
    }

    #[test]
    fn merge_matches_central() {
        let g = gen::gnp(16, 0.4, 19);
        let stream = GraphStream::with_churn(&g, 100, 21);
        let parts = stream.split(2, 23);
        let mut a = KEdgeConnectSketch::new(16, 3, 99);
        parts[0].replay(|u, v, d| a.update_edge(u, v, d));
        let mut b = KEdgeConnectSketch::new(16, 3, 99);
        parts[1].replay(|u, v, d| b.update_edge(u, v, d));
        a.merge(&b);
        let mut central = KEdgeConnectSketch::new(16, 3, 99);
        stream.replay(|u, v, d| central.update_edge(u, v, d));
        assert_eq!(a.decode_witness().edges(), central.decode_witness().edges());
    }

    #[test]
    fn empty_graph_gives_empty_witness() {
        let s = KEdgeConnectSketch::new(8, 3, 1);
        assert_eq!(s.decode_witness().m(), 0);
    }
}
