//! The spanning-forest / connectivity sketch (the AGM substrate \[4\]).
//!
//! Theorem 2.3's `k-EDGECONNECT` and everything in §3 build on the
//! sketch-based spanning forest from the authors' SODA'12 paper: each node
//! keeps ℓ0 structures over its incidence vector `x^u` (Eq. 1); Boruvka
//! rounds then repeatedly sample an outgoing edge per component by
//! *summing* the member nodes' sketches (linearity ⇒ the sum sketches the
//! crossing edges) and contract.
//!
//! Each Boruvka round queries a *fresh* bank of detectors — re-querying a
//! structure after conditioning on its previous answers voids the
//! independence the analysis needs. The `share_rounds` ablation knob (E-abl)
//! deliberately reuses one bank to measure how much that matters in
//! practice.

use crate::incidence::sign_for;
use gs_field::{BackendKind, HashBackend, Randomness, M61};
use gs_graph::UnionFind;
use gs_sketch::bank::{BankGeometry, CellBank, CellBanked};
use gs_sketch::cache::{BankStamp, DecodeCache};
use gs_sketch::domain::{edge_domain, edge_index, edge_unindex};
use gs_sketch::lane::{LaneOverflow, LaneWidth};
use gs_sketch::par::{par_map, DecodePlan};
use gs_sketch::{
    level_count, EdgeUpdate, L0Detector, L0Result, LinearSketch, Mergeable, OneSparseCell,
    OneSparseState, CELL_BYTES,
};
use serde::{Deserialize, Error, Serialize, Value};

/// Parameters for [`ForestSketch`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Boruvka rounds (each with its own detector bank). The default is
    /// `⌈log2 n⌉ + 2`: components at least halve per successful round and
    /// the slack absorbs detector failures.
    pub rounds: usize,
    /// Repetitions inside each [`L0Detector`].
    pub detector_reps: usize,
    /// Ablation: reuse round 0's bank for every round (cuts memory by
    /// `rounds×` but voids the independence argument).
    pub share_rounds: bool,
    /// Randomness regime (§2.3 oracle vs §3.4 Nisan).
    pub kind: BackendKind,
}

impl ForestParams {
    /// Default parameters for an `n`-vertex graph.
    pub fn for_n(n: usize) -> Self {
        ForestParams {
            rounds: (usize::BITS - n.max(2).leading_zeros()) as usize + 2,
            detector_reps: 2,
            share_rounds: false,
            kind: BackendKind::Oracle,
        }
    }
}

/// Upper bound on [`ForestParams::detector_reps`]: the hot path keeps the
/// per-rep subsampling levels in a stack buffer of this size. Far above
/// any useful repetition count (the default is 2–3; failure probability
/// falls exponentially in reps).
pub const MAX_DETECTOR_REPS: usize = 64;

/// A decoded spanning forest.
#[derive(Clone, Debug, Default)]
pub struct Forest {
    /// Vertex count.
    pub n: usize,
    /// Forest edges with the sketched coordinate value that was sampled:
    /// `|value|` is the edge's current multiplicity (unit-weight streams)
    /// or its weight (value-carrying streams, §3.5).
    pub edges: Vec<(usize, usize, i64)>,
}

impl Forest {
    /// Number of connected components implied by the forest
    /// (`n − |edges|`; forests are acyclic by construction).
    pub fn component_count(&self) -> usize {
        self.n - self.edges.len()
    }

    /// The component partition as a union-find structure.
    pub fn components(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.n);
        for &(u, v, _) in &self.edges {
            uf.union(u, v);
        }
        uf
    }

    /// `true` iff the sketched graph was connected (w.h.p.).
    pub fn is_spanning_tree(&self) -> bool {
        self.component_count() == 1
    }
}

/// Linear sketch from which a spanning forest of the current multigraph
/// can be decoded (w.h.p.).
///
/// Storage is **one contiguous [`CellBank`]** covering every round, node,
/// repetition, and level — the shared substrate every scaling path
/// exploits: updates hash once per round and fan into both endpoint rows,
/// merges are three lane-wise slice adds over the whole sketch, and the
/// binary wire format dumps the lanes verbatim. The pre-bank layout
/// (`rounds × n` individually-allocated detectors) survives only as the
/// JSON wire shape: serialization round-trips through [`L0Detector`]
/// proxies so wire-format-v1 files are unchanged in both directions.
#[derive(Clone, Debug, PartialEq)]
pub struct ForestSketch {
    n: usize,
    params: ForestParams,
    seed: u64,
    /// Levels per detector row: `level_count(C(n,2))`.
    levels: u32,
    /// `(banks · n · detector_reps) × levels × 1` cells; the row of
    /// `(bank, node, rep)` starts at `((bank·n + node)·reps + rep)·levels`.
    cells: CellBank,
    /// Per-`(bank, rep)` subsampling hashes, bank-major. All nodes within
    /// one bank share them: summing Σ_{u∈A} sketch(x^u) is only
    /// meaningful when every node sketch is the same linear projection
    /// applied to a different vector. Independent randomness exists
    /// *across rounds* only.
    level_hash: Vec<HashBackend>,
    /// Per-bank fingerprint hash.
    finger: Vec<HashBackend>,
}

impl ForestSketch {
    /// A forest sketch with default parameters.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_params(n, ForestParams::for_n(n), seed)
    }

    /// Full-control constructor (wide lanes — no delta bound declared).
    ///
    /// # Panics
    /// Panics if `n < 2` or `detector_reps` exceeds
    /// [`MAX_DETECTOR_REPS`].
    pub fn with_params(n: usize, params: ForestParams, seed: u64) -> Self {
        Self::with_width(n, params, seed, LaneWidth::Wide)
    }

    /// As [`ForestSketch::with_params`], deriving the bank's `s`-lane
    /// width from the caller's bound on `|delta|` per update (indices are
    /// edge slots `< C(n,2)`; see `LaneWidth::for_bounds`).
    pub fn with_bounds(n: usize, params: ForestParams, seed: u64, max_abs_delta: u64) -> Self {
        let width = LaneWidth::for_bounds(edge_domain(n).saturating_sub(1), max_abs_delta);
        Self::with_width(n, params, seed, width)
    }

    fn with_width(n: usize, params: ForestParams, seed: u64, width: LaneWidth) -> Self {
        assert!(n >= 2);
        assert!(
            (1..=MAX_DETECTOR_REPS).contains(&params.detector_reps),
            "detector_reps must be in 1..={MAX_DETECTOR_REPS}"
        );
        let banks = if params.share_rounds {
            1
        } else {
            params.rounds
        };
        let reps = params.detector_reps;
        let levels = level_count(edge_domain(n));
        let level_hash = (0..banks)
            .flat_map(|b| {
                let seed = Self::bank_seed(seed, b);
                (0..reps).map(move |r| params.kind.backend(seed, 0x4C30_0100 + r as u64))
            })
            .collect();
        let finger = (0..banks)
            .map(|b| params.kind.backend(Self::bank_seed(seed, b), 0x4C30_0001))
            .collect();
        ForestSketch {
            n,
            params,
            seed,
            levels,
            cells: CellBank::with_width(
                BankGeometry::new(banks * n * reps, levels as usize, 1),
                width,
            ),
            level_hash,
            finger,
        }
    }

    /// The per-round detector seed (the derivation the pre-bank
    /// `Vec<L0Detector>` layout used, kept for wire compatibility).
    fn bank_seed(seed: u64, bank: usize) -> u64 {
        seed ^ (0xF0_0000 + bank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Number of detector banks (1 under the `share_rounds` ablation).
    fn bank_count(&self) -> usize {
        if self.params.share_rounds {
            1
        } else {
            self.params.rounds
        }
    }

    /// Cells per `(bank, node)` detector row group: `reps × levels`.
    fn row_len(&self) -> usize {
        self.params.detector_reps * self.levels as usize
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Applies one `(index, ±δ)` coordinate update to the `(bank, node)`
    /// detector rows, with the hash work precomputed: `lmax[r]` is the
    /// per-rep subsampling level, `(dw, ds, df)` the update triple.
    #[inline]
    fn fan_rows(&mut self, bank: usize, node: usize, lmax: &[u32], dw: i64, ds: i128, df: M61) {
        let levels = self.levels as usize;
        let mut base = ((bank * self.n + node) * self.params.detector_reps) * levels;
        for &lm in lmax {
            self.cells.fan(base..base + lm as usize + 1, dw, ds, df);
            base += levels;
        }
    }

    /// Applies a stream update `(u, v, ±m)` (Definition 1; `m` units of
    /// multiplicity at once are allowed). Each bank hashes the edge slot
    /// once — fingerprint plus one subsampling level per repetition — and
    /// fans the triple into both endpoint rows (`+` for the smaller
    /// endpoint, `−` for the larger, the Eq. 1 sign convention).
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        assert!(u != v && u < self.n && v < self.n, "bad edge ({u},{v})");
        if delta == 0 {
            return;
        }
        let idx = edge_index(self.n, u, v);
        let du = sign_for(u, v) * delta;
        let reps = self.params.detector_reps;
        // Stack buffer for the per-rep levels (with_params caps reps).
        let mut lmax = [0u32; MAX_DETECTOR_REPS];
        let lmax = &mut lmax[..reps];
        for b in 0..self.bank_count() {
            for (r, lm) in lmax.iter_mut().enumerate() {
                *lm = self.level_hash[b * reps + r].subsample_level(idx, self.levels - 1);
            }
            let (dw, ds, df) = CellBank::deltas(idx, du, self.finger[b].hash_m61(idx));
            self.fan_rows(b, u, lmax, dw, ds, df);
            self.fan_rows(b, v, lmax, -dw, -ds, -df);
        }
    }

    /// Batched ingestion — the bank kernel. Bit-identical to looping
    /// [`ForestSketch::update_edge`] (linearity makes application order
    /// irrelevant), but processes the batch **bank by bank**: each bank's
    /// cell region is contiguous, so one pass over the batch stays in a
    /// cache-resident window instead of striding across every bank per
    /// update.
    pub fn absorb_batch(&mut self, batch: &[EdgeUpdate]) {
        // Validate and pre-index once per update, not once per bank.
        let prepared: Vec<(u64, i64, u32, u32)> = batch
            .iter()
            .filter_map(|up| {
                let (u, v, delta) = (up.u, up.v, up.delta);
                assert!(u != v && u < self.n && v < self.n, "bad edge ({u},{v})");
                (delta != 0).then(|| {
                    (
                        edge_index(self.n, u, v),
                        sign_for(u, v) * delta,
                        u as u32,
                        v as u32,
                    )
                })
            })
            .collect();
        let reps = self.params.detector_reps;
        let mut lmax = vec![0u32; reps];
        for b in 0..self.bank_count() {
            for &(idx, du, u, v) in &prepared {
                for (r, lm) in lmax.iter_mut().enumerate() {
                    *lm = self.level_hash[b * reps + r].subsample_level(idx, self.levels - 1);
                }
                let (dw, ds, df) = CellBank::deltas(idx, du, self.finger[b].hash_m61(idx));
                self.fan_rows(b, u as usize, &lmax, dw, ds, df);
                self.fan_rows(b, v as usize, &lmax, -dw, -ds, -df);
            }
        }
    }

    /// Total sketch size in 1-sparse cells (space accounting for E3/E4).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// An empty standalone detector with bank `b`'s hashes — the proxy
    /// through which decode queries and the JSON wire shape reuse the
    /// [`L0Detector`] machinery.
    fn proxy_detector(&self, bank: usize) -> L0Detector {
        L0Detector::with_params(
            edge_domain(self.n),
            self.params.detector_reps,
            Self::bank_seed(self.seed, bank),
            self.params.kind,
        )
    }

    /// Queries Σ_{u∈group} sketch(x^u) for bank `bank` — the bank-level
    /// batched group query. The decode scan visits cells in the same
    /// rep-major order as [`L0Detector::query`], but the sum over the
    /// group is computed **lazily, cell by cell, in scan order**: a query
    /// that decodes at subsampling level `ℓ` (the overwhelmingly common
    /// case — the surviving level of a support of size `d` is `≈ log₂ d`)
    /// only ever sums `reps + ℓ` cells per member instead of the whole
    /// `reps × levels` row, which is what takes the full-bank memory
    /// sweep off every Boruvka round. Lazy summation cannot change the
    /// answer: a cell the scan never reaches never influences the scan,
    /// and the cells it does reach hold exactly the member sums the eager
    /// query would hold ([`ForestSketch::group_query_reference`] keeps
    /// the eager pre-bank path alive as the pinned baseline).
    fn group_query(&self, bank: usize, group: &[usize]) -> L0Result {
        let levels = self.levels as usize;
        let rowlen = self.row_len();
        let reps = self.params.detector_reps;
        let (w, f) = (self.cells.w_lane(), self.cells.f_lane());
        let s = self.cells.s_lane();
        let domain = edge_domain(self.n);
        let finger = &self.finger[bank];
        let row0 = (bank * self.n) * rowlen;
        // Sum of cell `j` of the row group over the members. The group sum
        // accumulates wide regardless of the bank's lane width: a sum over
        // n members can exceed the narrow per-cell range.
        let gather = |j: usize| -> OneSparseCell {
            let (mut gw, mut gs, mut gf) = (0i64, 0i128, M61::ZERO);
            for &node in group {
                let off = row0 + node * rowlen + j;
                gw += w[off];
                gs += s.get(off);
                gf += f[off];
            }
            OneSparseCell::from_parts(gw, gs, gf)
        };
        // Empty iff the full-vector cell of every rep sums to zero.
        let full: [OneSparseCell; MAX_DETECTOR_REPS] = std::array::from_fn(|r| {
            if r < reps {
                gather(r * levels)
            } else {
                OneSparseCell::new()
            }
        });
        if full[..reps].iter().all(|c| c.is_zero()) {
            return L0Result::Empty;
        }
        for (r, &full_cell) in full[..reps].iter().enumerate() {
            for l in 0..levels {
                let cell = if l == 0 {
                    full_cell
                } else {
                    gather(r * levels + l)
                };
                if let OneSparseState::One(idx, v) = cell.decode(domain, finger) {
                    return L0Result::Sample(idx, v);
                }
            }
        }
        L0Result::Fail
    }

    /// The pre-kernel group query, kept verbatim as the decode baseline:
    /// per-cell indexed adds into freshly allocated lanes, overlaid onto
    /// a freshly built proxy detector per group. `bench_decode` measures
    /// the kernel against it and the parity tests pin bit-identity; it is
    /// not on any production path.
    #[doc(hidden)]
    pub fn group_query_reference(&self, bank: usize, group: &[usize]) -> L0Result {
        let rowlen = self.row_len();
        let (w, f) = (self.cells.w_lane(), self.cells.f_lane());
        let s = self.cells.s_lane();
        let mut gw = vec![0i64; rowlen];
        let mut gs = vec![0i128; rowlen];
        let mut gf = vec![M61::ZERO; rowlen];
        for &node in group {
            let off = (bank * self.n + node) * rowlen;
            for j in 0..rowlen {
                gw[j] += w[off + j];
                gs[j] += s.get(off + j);
                gf[j] += f[off + j];
            }
        }
        let mut acc = self.proxy_detector(bank);
        acc.banks_mut()[0].overlay(gw, gs, gf);
        acc.query()
    }

    /// Decodes a spanning forest by Boruvka contraction (sequentially —
    /// [`ForestSketch::decode_with`] takes a thread plan).
    pub fn decode(&self) -> Forest {
        self.decode_with(&DecodePlan::sequential())
    }

    /// Decodes a spanning forest by Boruvka contraction under a
    /// [`DecodePlan`]. Bit-identical to [`ForestSketch::decode`] at every
    /// thread count — see [`ForestSketch::decode_excluding_with`] for the
    /// determinism argument.
    pub fn decode_with(&self, plan: &DecodePlan) -> Forest {
        self.decode_excluding_with(&mut UnionFind::new(self.n), plan)
    }

    /// Boruvka decoding seeded with an existing partition: components
    /// already joined in `uf` are treated as contracted. Used by
    /// `k-EDGECONNECT` follow-up forests and exposed for callers that
    /// combine sketches with known connectivity.
    pub fn decode_excluding(&self, uf: &mut UnionFind) -> Forest {
        self.decode_excluding_with(uf, &DecodePlan::sequential())
    }

    /// [`ForestSketch::decode_excluding`] under a [`DecodePlan`]: the
    /// group queries of one Boruvka round fan out across the plan's
    /// threads.
    ///
    /// **Determinism.** The groups are fixed at round start (`uf` is not
    /// touched until every query of the round returned), each group's
    /// query reads only the immutable cell bank, and the per-group
    /// results are reassembled in group order before the sequential
    /// union pass consumes them. The parallel decode is therefore
    /// **bit-identical** to the sequential one — same samples, same
    /// union order, same forest — which the decode-parity suite pins for
    /// every task at thread counts {1, 2, 8}.
    pub fn decode_excluding_with(&self, uf: &mut UnionFind, plan: &DecodePlan) -> Forest {
        let mut edges = Vec::new();
        for round in 0..self.params.rounds {
            let bank = if self.params.share_rounds { 0 } else { round };
            let groups = uf.groups();
            if groups.len() <= 1 {
                break;
            }
            // Σ_{u∈A} sketch(x^u) sketches exactly the crossing edges.
            // Groups are independent within the round: fan out, collect
            // in group order.
            let found = par_map(&groups, plan.threads(), |_, group| {
                match self.group_query(bank, group) {
                    L0Result::Sample(idx, val) => {
                        let (u, v) = edge_unindex(idx);
                        (u < self.n && v < self.n).then_some((u, v, val))
                    }
                    _ => None,
                }
            });
            for (u, v, val) in found.into_iter().flatten() {
                // A stale or colliding sample inside one component is
                // discarded by the union check.
                if uf.union(u, v) {
                    edges.push((u, v, val));
                }
            }
        }
        Forest { n: self.n, edges }
    }

    /// The memoized Borůvka decode behind [`LinearSketch::decode_cached`]:
    /// reuses per-group query results from the previous decode wherever
    /// the dirty bitmap proves the group's detector rows are untouched.
    ///
    /// **Soundness.** A group's query in round `r` reads exactly the
    /// `(bank, node)` rows of its members. While the bank's drain epoch is
    /// unchanged, mutators only ever *set* dirty bits, so the current
    /// dirty bitmap over-approximates every cell changed since the memo
    /// was taken — a group none of whose member rows carries a dirty bit
    /// reads bit-identical cells and must produce the memoized result. A
    /// group is also recomputed when its member list differs from the
    /// memoized round (the Borůvka contraction diverged upstream), and the
    /// whole memo is dropped on a drain-epoch change. The union pass then
    /// consumes the same per-group results in the same group order as
    /// [`ForestSketch::decode_excluding_with`], so the forest is
    /// bit-identical to a fresh decode.
    fn decode_memoized(&self, cache: &mut DecodeCache<Forest>, plan: &DecodePlan) -> Forest {
        let stamp = BankStamp {
            generation: self.cells.generation(),
            drains: self.cells.drain_epoch(),
        };
        // The memo transfers only within this bank's lineage: the drain
        // epoch must be unchanged (bits were never cleared since) and the
        // generation must not have moved backwards (a lower generation
        // means a rebuilt/reset bank whose dirty bitmap says nothing
        // about what changed relative to the memo).
        let memo = cache
            .take_detail::<ForestDecodeMemo>()
            .filter(|m| m.stamp.drains == stamp.drains && m.stamp.generation <= stamp.generation);
        let rowlen = self.row_len();
        // Node-rows with at least one dirty cell: row id = bank·n + node.
        let touched: std::collections::HashSet<usize> = match &memo {
            Some(_) => self
                .cells
                .dirty_indices()
                .into_iter()
                .map(|i| i / rowlen)
                .collect(),
            None => Default::default(),
        };
        let mut rounds_memo: Vec<RoundMemo> = Vec::with_capacity(self.params.rounds);
        let mut uf = UnionFind::new(self.n);
        let mut edges = Vec::new();
        let (mut reused, mut recomputed) = (0u64, 0u64);
        for round in 0..self.params.rounds {
            let bank = if self.params.share_rounds { 0 } else { round };
            let groups = uf.groups();
            if groups.len() <= 1 {
                break;
            }
            let round_memo = memo.as_ref().and_then(|m| m.rounds.get(round));
            let mut results: Vec<Option<(usize, usize, i64)>> = vec![None; groups.len()];
            let mut need: Vec<usize> = Vec::new();
            for (gi, group) in groups.iter().enumerate() {
                let hit = round_memo.and_then(|m| {
                    if group
                        .iter()
                        .any(|&node| touched.contains(&(bank * self.n + node)))
                    {
                        None
                    } else {
                        m.get(group).copied()
                    }
                });
                match hit {
                    Some(res) => {
                        reused += 1;
                        results[gi] = res;
                    }
                    None => {
                        recomputed += 1;
                        need.push(gi);
                    }
                }
            }
            let fresh = par_map(&need, plan.threads(), |_, &gi| {
                match self.group_query(bank, &groups[gi]) {
                    L0Result::Sample(idx, val) => {
                        let (u, v) = edge_unindex(idx);
                        (u < self.n && v < self.n).then_some((u, v, val))
                    }
                    _ => None,
                }
            });
            for (&gi, res) in need.iter().zip(fresh) {
                results[gi] = res;
            }
            let mut rm = RoundMemo::with_capacity(groups.len());
            for (group, &res) in groups.iter().zip(&results) {
                rm.insert(group.clone(), res);
            }
            rounds_memo.push(rm);
            // Identical per-group results in identical group order ⇒ the
            // union pass below replays decode_excluding_with bit for bit.
            for (u, v, val) in results.into_iter().flatten() {
                if uf.union(u, v) {
                    edges.push((u, v, val));
                }
            }
        }
        cache.note_groups(reused, recomputed);
        cache.set_detail(ForestDecodeMemo {
            stamp,
            rounds: rounds_memo,
        });
        Forest { n: self.n, edges }
    }

    /// The full pre-kernel decode path (reference group queries, inline
    /// loop) — the baseline `bench_decode` compares against.
    #[doc(hidden)]
    pub fn decode_reference(&self) -> Forest {
        let mut uf = UnionFind::new(self.n);
        let mut edges = Vec::new();
        for round in 0..self.params.rounds {
            let bank = if self.params.share_rounds { 0 } else { round };
            let groups = uf.groups();
            if groups.len() <= 1 {
                break;
            }
            let mut found: Vec<(usize, usize, i64)> = Vec::new();
            for group in &groups {
                if let L0Result::Sample(idx, val) = self.group_query_reference(bank, group) {
                    let (u, v) = edge_unindex(idx);
                    if u < self.n && v < self.n {
                        found.push((u, v, val));
                    }
                }
            }
            for (u, v, val) in found {
                if uf.union(u, v) {
                    edges.push((u, v, val));
                }
            }
        }
        Forest { n: self.n, edges }
    }
}

/// One round's memoized group results: member list → the raw (pre-union)
/// sample the group's query produced.
type RoundMemo = std::collections::HashMap<Vec<usize>, Option<(usize, usize, i64)>>;

/// The structural memo a cached forest decode leaves in the
/// [`DecodeCache`] detail slot: the stamp it was computed at and the
/// per-round group results of the Borůvka contraction.
struct ForestDecodeMemo {
    stamp: BankStamp,
    rounds: Vec<RoundMemo>,
}

impl Mergeable for ForestSketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "merging forest sketches with different seeds"
        );
        assert_eq!(self.n, other.n);
        // One lane-wise add over the whole contiguous sketch.
        self.cells.add(&other.cells);
    }
}

impl CellBanked for ForestSketch {
    fn banks(&self) -> Vec<&CellBank> {
        vec![&self.cells]
    }

    fn banks_mut(&mut self) -> Vec<&mut CellBank> {
        vec![&mut self.cells]
    }

    fn fingerprints(&self) -> Vec<M61> {
        Vec::new()
    }

    fn fingerprints_mut(&mut self) -> Vec<&mut M61> {
        Vec::new()
    }
}

// The JSON wire shape predates the contiguous bank: a forest sketch
// serializes as `rounds × n` standalone detectors, each carrying its own
// hashes and cell array. Round-tripping through [`L0Detector`] proxies
// keeps wire-format-v1 files byte-compatible in both directions while the
// in-memory layout is one bank.
impl Serialize for ForestSketch {
    fn to_value(&self) -> Value {
        let rowlen = self.row_len();
        let (w, f) = (self.cells.w_lane(), self.cells.f_lane());
        // Widen once for the dump: the proxies (and the JSON shape) are
        // always wide.
        let s = self.cells.s_lane().to_wide_vec();
        let mut detectors = Vec::with_capacity(self.bank_count() * self.n);
        for b in 0..self.bank_count() {
            for node in 0..self.n {
                let mut d = self.proxy_detector(b);
                let off = (b * self.n + node) * rowlen;
                d.banks_mut()[0].overlay(
                    w[off..off + rowlen].to_vec(),
                    s[off..off + rowlen].to_vec(),
                    f[off..off + rowlen].to_vec(),
                );
                detectors.push(d.to_value());
            }
        }
        Value::Map(vec![
            ("n".into(), self.n.to_value()),
            ("params".into(), self.params.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("detectors".into(), Value::Seq(detectors)),
        ])
    }
}

impl Deserialize for ForestSketch {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n: usize = serde::field(v, "n")?;
        let params: ForestParams = serde::field(v, "params")?;
        let seed: u64 = serde::field(v, "seed")?;
        let detectors: Vec<L0Detector> = serde::field(v, "detectors")?;
        if n < 2 {
            return Err(Error::msg("forest sketch needs n >= 2"));
        }
        if !(1..=MAX_DETECTOR_REPS).contains(&params.detector_reps) || params.rounds < 1 {
            return Err(Error::msg("forest sketch reps/rounds out of range"));
        }
        // Untrusted input: every shape check precedes any allocation that
        // the declared `n`/`params` could inflate — a corrupt file must
        // fail with an error, never with an aborting huge allocation. The
        // count checks bound `n` (and hence the bank) by the number of
        // detectors (and cells) the file physically carried.
        let banks = if params.share_rounds {
            1
        } else {
            params.rounds
        };
        let expected = banks
            .checked_mul(n)
            .ok_or_else(|| Error::msg("forest sketch dimensions overflow"))?;
        if detectors.len() != expected {
            return Err(Error::msg(format!(
                "expected {expected} detectors, found {}",
                detectors.len()
            )));
        }
        let rowlen = params.detector_reps * level_count(edge_domain(n)) as usize;
        for d in &detectors {
            if d.cell_count() != rowlen {
                return Err(Error::msg(format!(
                    "expected {rowlen} cells per detector, found {}",
                    d.cell_count()
                )));
            }
        }
        let mut sk = ForestSketch::with_params(n, params, seed);
        debug_assert_eq!(sk.row_len(), rowlen);
        let total = detectors.len() * rowlen;
        let mut w = Vec::with_capacity(total);
        let mut s = Vec::with_capacity(total);
        let mut f = Vec::with_capacity(total);
        for d in &detectors {
            let bank = d.banks()[0];
            w.extend_from_slice(bank.w_lane());
            s.extend(bank.s_lane().to_wide_vec());
            f.extend_from_slice(bank.f_lane());
        }
        // Untrusted input: a narrow spec-built bank range-checks the
        // incoming index-sums instead of truncating them.
        sk.cells
            .try_overlay(w, s, f)
            .map_err(|e| Error::msg(format!("forest sketch import: {e}")))?;
        Ok(sk)
    }
}

impl LinearSketch for ForestSketch {
    type Output = Forest;

    fn n(&self) -> usize {
        self.n
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        ForestSketch::update_edge(self, u, v, delta);
    }

    fn absorb(&mut self, batch: &[EdgeUpdate]) {
        self.absorb_batch(batch);
    }

    fn resident_lane_bytes(&self) -> usize {
        CellBanked::resident_bytes(self)
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    fn lane_overflow(&self) -> Option<LaneOverflow> {
        CellBanked::lane_overflow(self)
    }

    fn decode(&self) -> Forest {
        ForestSketch::decode(self)
    }

    fn decode_with(&self, plan: &DecodePlan) -> Forest {
        ForestSketch::decode_with(self, plan)
    }

    fn decode_cached(&self, cache: &mut DecodeCache<Forest>, plan: &DecodePlan) -> Forest {
        cache.answer_for(self, |c| self.decode_memoized(c, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::{gen, Graph};
    use gs_stream::GraphStream;

    fn sketch_of(g: &Graph, seed: u64) -> ForestSketch {
        let mut s = ForestSketch::new(g.n(), seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        s
    }

    fn forest_is_valid(g: &Graph, f: &Forest) {
        // Every forest edge exists in g, the forest is acyclic, and it has
        // exactly as many components as g.
        let mut uf = UnionFind::new(g.n());
        for &(u, v, val) in &f.edges {
            assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
            assert!(uf.union(u, v), "cycle through ({u},{v})");
            // The sampled coordinate value is the signed multiplicity.
            assert_eq!(val.unsigned_abs(), g.edge_weight(u, v), "value mismatch");
        }
        assert_eq!(
            f.component_count(),
            g.components().component_count(),
            "component count mismatch"
        );
    }

    #[test]
    fn connected_graph_yields_spanning_tree() {
        let g = gen::connected_gnp(50, 0.1, 3);
        let f = sketch_of(&g, 1).decode();
        forest_is_valid(&g, &f);
        assert!(f.is_spanning_tree());
    }

    #[test]
    fn disconnected_graph_counts_components() {
        // Two cliques, no bridge.
        let mut edges = Vec::new();
        for u in 0..8 {
            for v in (u + 1)..8 {
                edges.push((u, v));
                edges.push((8 + u, 8 + v));
            }
        }
        let g = Graph::from_edges(16, edges);
        let f = sketch_of(&g, 5).decode();
        forest_is_valid(&g, &f);
        assert_eq!(f.component_count(), 2);
        let mut comps = f.components();
        assert!(comps.connected(0, 7));
        assert!(comps.connected(8, 15));
        assert!(!comps.connected(0, 8));
    }

    #[test]
    fn empty_graph_all_singletons() {
        let s = ForestSketch::new(10, 9);
        let f = s.decode();
        assert_eq!(f.component_count(), 10);
        assert!(f.edges.is_empty());
    }

    #[test]
    fn deletions_disconnect() {
        // A path 0-1-2-3 where the middle edge is inserted then deleted.
        let mut s = ForestSketch::new(4, 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            s.update_edge(u, v, 1);
        }
        s.update_edge(1, 2, -1);
        let f = s.decode();
        assert_eq!(f.component_count(), 2);
        let mut comps = f.components();
        assert!(comps.connected(0, 1));
        assert!(comps.connected(2, 3));
        assert!(!comps.connected(1, 2));
    }

    #[test]
    fn dynamic_stream_with_churn() {
        let g = gen::connected_gnp(40, 0.15, 11);
        let stream = GraphStream::with_churn(&g, 400, 13);
        let mut s = ForestSketch::new(40, 17);
        stream.replay(|u, v, d| s.update_edge(u, v, d));
        let f = s.decode();
        forest_is_valid(&g, &f);
        assert!(f.is_spanning_tree());
    }

    #[test]
    fn success_rate_over_seeds() {
        // Spanning forest must decode w.h.p.; count failures across seeds.
        let g = gen::connected_gnp(60, 0.08, 21);
        let mut failures = 0;
        for seed in 0..30 {
            let f = sketch_of(&g, seed).decode();
            if !f.is_spanning_tree() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "forest decode failed {failures}/30 times");
    }

    #[test]
    fn merge_equals_central() {
        let g = gen::connected_gnp(30, 0.2, 31);
        let stream = GraphStream::with_churn(&g, 100, 33);
        let parts = stream.split(3, 35);
        let mut site_sketches: Vec<ForestSketch> = parts
            .iter()
            .map(|p| {
                let mut s = ForestSketch::new(30, 77);
                p.replay(|u, v, d| s.update_edge(u, v, d));
                s
            })
            .collect();
        let mut merged = site_sketches.remove(0);
        for s in &site_sketches {
            merged.merge(s);
        }
        let mut central = ForestSketch::new(30, 77);
        stream.replay(|u, v, d| central.update_edge(u, v, d));
        // Same seed + linear merges ⇒ identical decodes.
        assert_eq!(merged.decode().edges, central.decode().edges);
    }

    #[test]
    fn shared_rounds_ablation_is_sound_but_sticky() {
        // Reusing one detector bank across rounds keeps decoding *sound*
        // (never a phantom edge, never a cycle) but loses progress: a
        // component whose deterministic query fails will fail identically
        // every round. This is exactly why Boruvka needs fresh randomness
        // per round; the ablation bench quantifies the gap.
        let g = gen::connected_gnp(40, 0.15, 41);
        let mut params = ForestParams::for_n(40);
        params.share_rounds = true;
        let mut full_success = 0;
        for seed in 0..20 {
            let mut s = ForestSketch::with_params(40, params, seed);
            for &(u, v, w) in g.edges() {
                s.update_edge(u, v, w as i64);
            }
            let f = s.decode();
            forest_is_valid_partial(&g, &f);
            if f.is_spanning_tree() {
                full_success += 1;
            }
        }
        // Fresh-bank decoding succeeds ~30/30 (see success_rate_over_seeds);
        // the shared bank must do strictly worse — that is the finding.
        assert!(
            full_success < 20,
            "sticky-failure effect unexpectedly absent ({full_success}/20)"
        );
    }

    /// Soundness-only check: edges real, no cycles (spanning not required).
    fn forest_is_valid_partial(g: &Graph, f: &Forest) {
        let mut uf = UnionFind::new(g.n());
        for &(u, v, _) in &f.edges {
            assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
            assert!(uf.union(u, v), "cycle through ({u},{v})");
        }
    }

    #[test]
    fn batched_absorb_is_bit_identical_to_per_update_feed() {
        let g = gen::connected_gnp(30, 0.2, 61);
        let updates = GraphStream::with_churn(&g, 250, 63).edge_updates();
        for share_rounds in [false, true] {
            let mut params = ForestParams::for_n(30);
            params.share_rounds = share_rounds;
            let mut batched = ForestSketch::with_params(30, params, 65);
            batched.absorb_batch(&updates);
            let mut looped = ForestSketch::with_params(30, params, 65);
            for up in &updates {
                looped.update_edge(up.u, up.v, up.delta);
            }
            assert_eq!(batched, looped, "share_rounds = {share_rounds}");
        }
    }

    #[test]
    fn multigraph_multiplicities_survive_partial_deletion() {
        // Edge (0,1) has multiplicity 2; deleting one unit keeps it.
        let mut s = ForestSketch::new(3, 3);
        s.update_edge(0, 1, 2);
        s.update_edge(1, 2, 1);
        s.update_edge(0, 1, -1);
        let f = s.decode();
        assert!(f.is_spanning_tree());
    }

    #[test]
    fn planned_decode_is_bit_identical_to_sequential_and_reference() {
        let g = gen::connected_gnp(40, 0.12, 71);
        let s = sketch_of(&g, 73);
        let seq = s.decode();
        assert_eq!(
            s.decode_reference().edges,
            seq.edges,
            "kernel decode drifted from the pre-kernel reference"
        );
        for threads in [2, 3, 8, 64] {
            let par = s.decode_with(&DecodePlan::with_threads(threads));
            assert_eq!(par.edges, seq.edges, "threads = {threads}");
        }
        // Seeded-partition decoding must agree thread for thread too.
        let mut uf_seq = UnionFind::new(40);
        let mut uf_par = UnionFind::new(40);
        for v in 1..12 {
            uf_seq.union(0, v);
            uf_par.union(0, v);
        }
        let a = s.decode_excluding(&mut uf_seq);
        let b = s.decode_excluding_with(&mut uf_par, &DecodePlan::with_threads(8));
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn cached_decode_is_bit_identical_under_churn() {
        let g = gen::connected_gnp(50, 0.12, 81);
        let mut s = ForestSketch::new(50, 83);
        let mut cache: DecodeCache<Forest> = DecodeCache::with_disabled(false);
        let plan = DecodePlan::with_threads(4);
        // Interleave chunked ingest with cached queries; every cached
        // answer must equal a fresh decode at the same stream point.
        for chunk in g.edges().chunks(20) {
            for &(u, v, w) in chunk {
                s.update_edge(u, v, w as i64);
            }
            let cached = s.decode_cached(&mut cache, &plan);
            assert_eq!(cached.edges, s.decode_with(&plan).edges);
            // No mutation since: the second query is a pure hit.
            let hits = cache.hits();
            let again = s.decode_cached(&mut cache, &plan);
            assert_eq!(again.edges, cached.edges);
            assert_eq!(cache.hits(), hits + 1);
        }
        // After the first chunk every re-decode had a memo to splice from.
        assert!(cache.groups_reused() > 0, "no group-level reuse happened");
        // A single-edge delta invalidates, and the recomputed answer still
        // matches fresh.
        let &(u, v, w) = &g.edges()[0];
        s.update_edge(u, v, -(w as i64));
        let inval = cache.invalidations();
        let cached = s.decode_cached(&mut cache, &plan);
        assert_eq!(cache.invalidations(), inval + 1);
        assert_eq!(cached.edges, s.decode_with(&plan).edges);
    }

    #[test]
    fn decode_excluding_contracts_known_components() {
        let g = gen::connected_gnp(20, 0.3, 51);
        let s = sketch_of(&g, 53);
        let mut uf = UnionFind::new(20);
        // Pretend vertices 0..10 are already one component.
        for v in 1..10 {
            uf.union(0, v);
        }
        let f = s.decode_excluding(&mut uf);
        // All vertices end connected (graph is connected).
        assert_eq!(uf.component_count(), 1);
        // Fewer edges than a full spanning tree are needed.
        assert!(f.edges.len() <= 10);
    }
}
