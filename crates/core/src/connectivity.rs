//! The spanning-forest / connectivity sketch (the AGM substrate \[4\]).
//!
//! Theorem 2.3's `k-EDGECONNECT` and everything in §3 build on the
//! sketch-based spanning forest from the authors' SODA'12 paper: each node
//! keeps ℓ0 structures over its incidence vector `x^u` (Eq. 1); Boruvka
//! rounds then repeatedly sample an outgoing edge per component by
//! *summing* the member nodes' sketches (linearity ⇒ the sum sketches the
//! crossing edges) and contract.
//!
//! Each Boruvka round queries a *fresh* bank of detectors — re-querying a
//! structure after conditioning on its previous answers voids the
//! independence the analysis needs. The `share_rounds` ablation knob (E-abl)
//! deliberately reuses one bank to measure how much that matters in
//! practice.

use crate::incidence::update_both_endpoints;
use gs_field::BackendKind;
use gs_graph::UnionFind;
use gs_sketch::domain::{edge_domain, edge_index, edge_unindex};
use gs_sketch::{L0Detector, L0Result, LinearSketch, Mergeable, CELL_BYTES};
use serde::{Deserialize, Serialize};

/// Parameters for [`ForestSketch`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Boruvka rounds (each with its own detector bank). The default is
    /// `⌈log2 n⌉ + 2`: components at least halve per successful round and
    /// the slack absorbs detector failures.
    pub rounds: usize,
    /// Repetitions inside each [`L0Detector`].
    pub detector_reps: usize,
    /// Ablation: reuse round 0's bank for every round (cuts memory by
    /// `rounds×` but voids the independence argument).
    pub share_rounds: bool,
    /// Randomness regime (§2.3 oracle vs §3.4 Nisan).
    pub kind: BackendKind,
}

impl ForestParams {
    /// Default parameters for an `n`-vertex graph.
    pub fn for_n(n: usize) -> Self {
        ForestParams {
            rounds: (usize::BITS - n.max(2).leading_zeros()) as usize + 2,
            detector_reps: 2,
            share_rounds: false,
            kind: BackendKind::Oracle,
        }
    }
}

/// A decoded spanning forest.
#[derive(Clone, Debug, Default)]
pub struct Forest {
    /// Vertex count.
    pub n: usize,
    /// Forest edges with the sketched coordinate value that was sampled:
    /// `|value|` is the edge's current multiplicity (unit-weight streams)
    /// or its weight (value-carrying streams, §3.5).
    pub edges: Vec<(usize, usize, i64)>,
}

impl Forest {
    /// Number of connected components implied by the forest
    /// (`n − |edges|`; forests are acyclic by construction).
    pub fn component_count(&self) -> usize {
        self.n - self.edges.len()
    }

    /// The component partition as a union-find structure.
    pub fn components(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.n);
        for &(u, v, _) in &self.edges {
            uf.union(u, v);
        }
        uf
    }

    /// `true` iff the sketched graph was connected (w.h.p.).
    pub fn is_spanning_tree(&self) -> bool {
        self.component_count() == 1
    }
}

/// Linear sketch from which a spanning forest of the current multigraph
/// can be decoded (w.h.p.).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForestSketch {
    n: usize,
    params: ForestParams,
    seed: u64,
    /// `rounds × n` detectors over the edge-slot domain, round-major.
    /// With `share_rounds` only round 0 is allocated.
    detectors: Vec<L0Detector>,
}

impl ForestSketch {
    /// A forest sketch with default parameters.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_params(n, ForestParams::for_n(n), seed)
    }

    /// Full-control constructor.
    pub fn with_params(n: usize, params: ForestParams, seed: u64) -> Self {
        assert!(n >= 2);
        let banks = if params.share_rounds {
            1
        } else {
            params.rounds
        };
        let domain = edge_domain(n);
        // All nodes within one round share the SAME seed: summing
        // Σ_{u∈A} sketch(x^u) is only meaningful when every node sketch is
        // the same linear projection applied to a different vector.
        // Independent randomness exists *across rounds* only.
        let detectors = (0..banks * n)
            .map(|i| {
                let bank = i / n;
                L0Detector::with_params(
                    domain,
                    params.detector_reps,
                    seed ^ (0xF0_0000 + bank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    params.kind,
                )
            })
            .collect();
        ForestSketch {
            n,
            params,
            seed,
            detectors,
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Applies a stream update `(u, v, ±m)` (Definition 1; `m` units of
    /// multiplicity at once are allowed).
    pub fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        assert!(u != v && u < self.n && v < self.n, "bad edge ({u},{v})");
        if delta == 0 {
            return;
        }
        let idx = edge_index(self.n, u, v);
        let banks = if self.params.share_rounds {
            1
        } else {
            self.params.rounds
        };
        update_both_endpoints(u, v, delta, |node, d| {
            for b in 0..banks {
                self.detectors[b * self.n + node].update(idx, d);
            }
        });
    }

    /// Total sketch size in 1-sparse cells (space accounting for E3/E4).
    pub fn cell_count(&self) -> usize {
        self.detectors.iter().map(|d| d.cell_count()).sum()
    }

    /// Decodes a spanning forest by Boruvka contraction.
    pub fn decode(&self) -> Forest {
        self.decode_excluding(&mut UnionFind::new(self.n))
    }

    /// Boruvka decoding seeded with an existing partition: components
    /// already joined in `uf` are treated as contracted. Used by
    /// `k-EDGECONNECT` follow-up forests and exposed for callers that
    /// combine sketches with known connectivity.
    pub fn decode_excluding(&self, uf: &mut UnionFind) -> Forest {
        let mut edges = Vec::new();
        for round in 0..self.params.rounds {
            let bank = if self.params.share_rounds { 0 } else { round };
            let groups = uf.groups();
            if groups.len() <= 1 {
                break;
            }
            let mut found: Vec<(usize, usize, i64)> = Vec::new();
            for group in &groups {
                // Σ_{u∈A} sketch(x^u) sketches exactly the crossing edges.
                let mut acc = self.detectors[bank * self.n + group[0]].clone();
                for &u in &group[1..] {
                    acc.merge(&self.detectors[bank * self.n + u]);
                }
                if let L0Result::Sample(idx, val) = acc.query() {
                    let (u, v) = edge_unindex(idx);
                    if u < self.n && v < self.n {
                        found.push((u, v, val));
                    }
                }
            }
            for (u, v, val) in found {
                // A stale or colliding sample inside one component is
                // discarded by the union check.
                if uf.union(u, v) {
                    edges.push((u, v, val));
                }
            }
        }
        Forest { n: self.n, edges }
    }
}

impl Mergeable for ForestSketch {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "merging forest sketches with different seeds"
        );
        assert_eq!(self.n, other.n);
        for (a, b) in self.detectors.iter_mut().zip(&other.detectors) {
            a.merge(b);
        }
    }
}

impl LinearSketch for ForestSketch {
    type Output = Forest;

    fn n(&self) -> usize {
        self.n
    }

    fn update_edge(&mut self, u: usize, v: usize, delta: i64) {
        ForestSketch::update_edge(self, u, v, delta);
    }

    fn space_bytes(&self) -> usize {
        self.cell_count() * CELL_BYTES
    }

    fn decode(&self) -> Forest {
        ForestSketch::decode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::{gen, Graph};
    use gs_stream::GraphStream;

    fn sketch_of(g: &Graph, seed: u64) -> ForestSketch {
        let mut s = ForestSketch::new(g.n(), seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        s
    }

    fn forest_is_valid(g: &Graph, f: &Forest) {
        // Every forest edge exists in g, the forest is acyclic, and it has
        // exactly as many components as g.
        let mut uf = UnionFind::new(g.n());
        for &(u, v, val) in &f.edges {
            assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
            assert!(uf.union(u, v), "cycle through ({u},{v})");
            // The sampled coordinate value is the signed multiplicity.
            assert_eq!(val.unsigned_abs(), g.edge_weight(u, v), "value mismatch");
        }
        assert_eq!(
            f.component_count(),
            g.components().component_count(),
            "component count mismatch"
        );
    }

    #[test]
    fn connected_graph_yields_spanning_tree() {
        let g = gen::connected_gnp(50, 0.1, 3);
        let f = sketch_of(&g, 1).decode();
        forest_is_valid(&g, &f);
        assert!(f.is_spanning_tree());
    }

    #[test]
    fn disconnected_graph_counts_components() {
        // Two cliques, no bridge.
        let mut edges = Vec::new();
        for u in 0..8 {
            for v in (u + 1)..8 {
                edges.push((u, v));
                edges.push((8 + u, 8 + v));
            }
        }
        let g = Graph::from_edges(16, edges);
        let f = sketch_of(&g, 5).decode();
        forest_is_valid(&g, &f);
        assert_eq!(f.component_count(), 2);
        let mut comps = f.components();
        assert!(comps.connected(0, 7));
        assert!(comps.connected(8, 15));
        assert!(!comps.connected(0, 8));
    }

    #[test]
    fn empty_graph_all_singletons() {
        let s = ForestSketch::new(10, 9);
        let f = s.decode();
        assert_eq!(f.component_count(), 10);
        assert!(f.edges.is_empty());
    }

    #[test]
    fn deletions_disconnect() {
        // A path 0-1-2-3 where the middle edge is inserted then deleted.
        let mut s = ForestSketch::new(4, 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            s.update_edge(u, v, 1);
        }
        s.update_edge(1, 2, -1);
        let f = s.decode();
        assert_eq!(f.component_count(), 2);
        let mut comps = f.components();
        assert!(comps.connected(0, 1));
        assert!(comps.connected(2, 3));
        assert!(!comps.connected(1, 2));
    }

    #[test]
    fn dynamic_stream_with_churn() {
        let g = gen::connected_gnp(40, 0.15, 11);
        let stream = GraphStream::with_churn(&g, 400, 13);
        let mut s = ForestSketch::new(40, 17);
        stream.replay(|u, v, d| s.update_edge(u, v, d));
        let f = s.decode();
        forest_is_valid(&g, &f);
        assert!(f.is_spanning_tree());
    }

    #[test]
    fn success_rate_over_seeds() {
        // Spanning forest must decode w.h.p.; count failures across seeds.
        let g = gen::connected_gnp(60, 0.08, 21);
        let mut failures = 0;
        for seed in 0..30 {
            let f = sketch_of(&g, seed).decode();
            if !f.is_spanning_tree() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "forest decode failed {failures}/30 times");
    }

    #[test]
    fn merge_equals_central() {
        let g = gen::connected_gnp(30, 0.2, 31);
        let stream = GraphStream::with_churn(&g, 100, 33);
        let parts = stream.split(3, 35);
        let mut site_sketches: Vec<ForestSketch> = parts
            .iter()
            .map(|p| {
                let mut s = ForestSketch::new(30, 77);
                p.replay(|u, v, d| s.update_edge(u, v, d));
                s
            })
            .collect();
        let mut merged = site_sketches.remove(0);
        for s in &site_sketches {
            merged.merge(s);
        }
        let mut central = ForestSketch::new(30, 77);
        stream.replay(|u, v, d| central.update_edge(u, v, d));
        // Same seed + linear merges ⇒ identical decodes.
        assert_eq!(merged.decode().edges, central.decode().edges);
    }

    #[test]
    fn shared_rounds_ablation_is_sound_but_sticky() {
        // Reusing one detector bank across rounds keeps decoding *sound*
        // (never a phantom edge, never a cycle) but loses progress: a
        // component whose deterministic query fails will fail identically
        // every round. This is exactly why Boruvka needs fresh randomness
        // per round; the ablation bench quantifies the gap.
        let g = gen::connected_gnp(40, 0.15, 41);
        let mut params = ForestParams::for_n(40);
        params.share_rounds = true;
        let mut full_success = 0;
        for seed in 0..20 {
            let mut s = ForestSketch::with_params(40, params, seed);
            for &(u, v, w) in g.edges() {
                s.update_edge(u, v, w as i64);
            }
            let f = s.decode();
            forest_is_valid_partial(&g, &f);
            if f.is_spanning_tree() {
                full_success += 1;
            }
        }
        // Fresh-bank decoding succeeds ~30/30 (see success_rate_over_seeds);
        // the shared bank must do strictly worse — that is the finding.
        assert!(
            full_success < 20,
            "sticky-failure effect unexpectedly absent ({full_success}/20)"
        );
    }

    /// Soundness-only check: edges real, no cycles (spanning not required).
    fn forest_is_valid_partial(g: &Graph, f: &Forest) {
        let mut uf = UnionFind::new(g.n());
        for &(u, v, _) in &f.edges {
            assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
            assert!(uf.union(u, v), "cycle through ({u},{v})");
        }
    }

    #[test]
    fn multigraph_multiplicities_survive_partial_deletion() {
        // Edge (0,1) has multiplicity 2; deleting one unit keeps it.
        let mut s = ForestSketch::new(3, 3);
        s.update_edge(0, 1, 2);
        s.update_edge(1, 2, 1);
        s.update_edge(0, 1, -1);
        let f = s.decode();
        assert!(f.is_spanning_tree());
    }

    #[test]
    fn decode_excluding_contracts_known_components() {
        let g = gen::connected_gnp(20, 0.3, 51);
        let s = sketch_of(&g, 53);
        let mut uf = UnionFind::new(20);
        // Pretend vertices 0..10 are already one component.
        for v in 1..10 {
            uf.union(0, v);
        }
        let f = s.decode_excluding(&mut uf);
        // All vertices end connected (graph is connected).
        assert_eq!(uf.component_count(), 1);
        // Fewer edges than a full spanning tree are needed.
        assert!(f.edges.len() <= 10);
    }
}
