//! # graph-sketches
//!
//! A Rust implementation of **"Graph Sketches: Sparsification, Spanners,
//! and Subgraphs"** (Ahn, Guha, McGregor — PODS 2012): linear sketches of
//! dynamic graph streams supporting edge insertions *and* deletions, with
//! single-pass cut sparsification, small-subgraph counting, and adaptive
//! (multi-pass) spanner construction.
//!
//! ## Map from paper to modules
//!
//! | Paper | Module |
//! |---|---|
//! | Eq. 1 node incidence vectors `x^u` | [`incidence`] |
//! | AGM spanning-forest / connectivity sketch (substrate from \[4\]) | [`connectivity`] |
//! | Theorem 2.3 `k-EDGECONNECT` | [`kedge`] |
//! | Fig. 1 `MINCUT` (Thm 3.2 / 3.6) | [`mincut`] |
//! | Fig. 2 `SIMPLE-SPARSIFICATION` (Thm 3.3) | [`simple_sparsify`] |
//! | Fig. 3 `SPARSIFICATION` (Thm 3.4 / 3.7) | [`sparsify`] |
//! | §3.5 weighted graphs (Thm 3.8) | [`weighted`] |
//! | §4 subgraph fractions γ_H (Thm 4.1, Fig. 4) | [`subgraphs`] |
//! | §5 Baswana–Sen emulation, (2k−1)-spanner in k passes | [`spanner::baswana_sen`] |
//! | §5.1 `RECURSECONNECT`, (k^{log₂5}−1)-spanner in ⌈log k⌉+1 passes (Thm 5.1) | [`spanner::recurse`] |
//!
//! ## Quick start
//!
//! Every sketch speaks the unified [`gs_sketch::LinearSketch`] interface;
//! the [`api`] module adds runtime dispatch over all of them:
//!
//! ```
//! use graph_sketches::api::{SketchAnswer, SketchSpec, SketchTask};
//! use gs_graph::gen;
//! use gs_sketch::LinearSketch;
//! use gs_stream::GraphStream;
//!
//! let g = gen::connected_gnp(40, 0.2, 7);
//! // A dynamic stream with insertions and deletions that nets out to `g`.
//! let stream = GraphStream::with_churn(&g, 200, 1);
//! let mut sketch = SketchSpec::new(SketchTask::Connectivity, 40)
//!     .with_seed(0xC0FFEE)
//!     .build();
//! sketch.absorb(&stream.edge_updates());
//! match sketch.decode() {
//!     SketchAnswer::Connectivity { components, forest_edges, .. } => {
//!         assert_eq!(components, 1);
//!         assert_eq!(forest_edges.len(), 39);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```
//!
//! Static dispatch works identically — [`ForestSketch::new`],
//! [`MinCutSketch::new`], … all implement [`gs_sketch::LinearSketch`]
//! directly.
//!
//! All sketches are linear: they can be [`gs_sketch::Mergeable::merge`]d
//! across distributed sites (§1.1) and deletions cancel insertions —
//! `gs_stream::distributed::sketch_distributed` drives any of them one
//! thread per site and folds the results. Every structure takes explicit
//! parameter structs whose defaults are *scaled-down* versions of the
//! paper's constants (the paper's own constants are available via the
//! `paper_*` constructors); see DESIGN.md.

pub mod api;
pub mod connectivity;
pub mod extras;
pub mod frame;
pub mod incidence;
pub mod kedge;
pub mod mincut;
pub mod mst;
pub mod simple_sparsify;
pub mod spanner;
pub mod sparsify;
pub mod subgraphs;
pub mod weighted;
pub mod wire;

pub use api::{AnySketch, MergeError, SketchAnswer, SketchSpec, SketchTask};
pub use connectivity::ForestSketch;
pub use kedge::KEdgeConnectSketch;
pub use mincut::MinCutSketch;
pub use simple_sparsify::SimpleSparsifySketch;
pub use sparsify::SparsifySketch;
pub use subgraphs::SubgraphSketch;
pub use weighted::WeightedSparsifySketch;
pub use wire::{SketchFile, WireError};
