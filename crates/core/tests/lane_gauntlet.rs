//! The lane gauntlet: bit-identity and range-safety checks for the
//! compacted-lane + SIMD storage layer, run across **all ten** sketch
//! tasks through the public [`SketchSpec`] surface.
//!
//! Two disciplines are enforced here:
//!
//! 1. **Bit identity.** A spec-built sketch (compacted `s`-lanes, AVX2
//!    kernels where the CPU has them) must produce measurement state
//!    bit-identical to the wide-lane scalar reference on the same
//!    stream — across absorb, merge, accumulate, and drain_dirty. The
//!    scalar loops and wide lanes are the oracle; any divergence is a
//!    kernel bug, full stop.
//! 2. **Range safety.** Wire blobs, delta records, and legacy JSON may
//!    carry `s` values that do not fit a receiver's compacted lane.
//!    Every import path must reject them with
//!    [`WireError::LaneRange`] and leave the receiver untouched —
//!    never wrap, never panic.

use graph_sketches::{AnySketch, SketchFile, SketchSpec, SketchTask, WireError};
use gs_field::SplitMix64;
use gs_sketch::bank::CellBanked;
use gs_sketch::{simd, EdgeUpdate, LinearSketch, Mergeable};

/// Restores the runtime-detected SIMD dispatch on drop, so a failing
/// assertion in a forced-scalar section cannot leak the forced state
/// into other tests in this binary.
struct ScalarGuard;
impl ScalarGuard {
    fn force() -> Self {
        simd::force_scalar(true);
        ScalarGuard
    }
}
impl Drop for ScalarGuard {
    fn drop(&mut self) {
        simd::force_scalar(false);
    }
}

fn specs() -> Vec<SketchSpec> {
    SketchTask::ALL
        .iter()
        .enumerate()
        .map(|(i, &task)| {
            let mut spec = SketchSpec::new(task, 16);
            spec.seed = 0x9A_0000 + i as u64;
            // Few weight classes keep the weighted builds small; the
            // class bound derivation is exercised all the same.
            spec.max_weight = 8;
            spec
        })
        .collect()
}

/// A deterministic update stream for `spec`: unit ±1 deltas for
/// Definition-1 tasks, ±w weights for the weighted tasks, with enough
/// churn that deletions partially cancel insertions.
fn workload(spec: &SketchSpec, salt: u64, len: usize) -> Vec<EdgeUpdate> {
    let weighted = matches!(spec.task, SketchTask::WeightedSparsify | SketchTask::Mst);
    let mut rng = SplitMix64::new(spec.seed ^ salt ^ 0x57AC);
    let n = spec.n as u64;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let u = rng.next_range(n) as usize;
        let v = rng.next_range(n) as usize;
        if u == v {
            continue;
        }
        let sign = if i % 5 == 4 { -1 } else { 1 };
        let mag = if weighted {
            1 + rng.next_range(spec.max_weight) as i64
        } else {
            1
        };
        out.push(EdgeUpdate {
            u,
            v,
            delta: sign * mag,
        });
        // Periodically delete the update we just made, so both signs of
        // every weight class get exercised.
        if i % 7 == 3 {
            let last = *out.last().unwrap();
            out.push(EdgeUpdate {
                delta: -last.delta,
                ..last
            });
        }
    }
    out
}

/// Widens every bank of a spec-built sketch in place: the wide-lane
/// reference twin, carrying the exact same seeds and parameters.
fn widened(spec: &SketchSpec) -> AnySketch {
    let mut s = spec.build();
    for bank in s.banks_mut() {
        bank.force_wide();
    }
    s
}

/// Asserts two sketches hold bit-identical measurement state, comparing
/// `s`-lanes at full width so narrow and wide twins can be compared.
fn assert_identical(task: SketchTask, a: &AnySketch, b: &AnySketch) {
    let (ba, bb) = (a.banks(), b.banks());
    assert_eq!(ba.len(), bb.len(), "{task:?}: bank count");
    for (i, (x, y)) in ba.iter().zip(&bb).enumerate() {
        assert_eq!(x.w_lane(), y.w_lane(), "{task:?}: bank {i} w lane");
        assert_eq!(
            x.s_lane().to_wide_vec(),
            y.s_lane().to_wide_vec(),
            "{task:?}: bank {i} s lane"
        );
        assert_eq!(x.f_lane(), y.f_lane(), "{task:?}: bank {i} f lane");
    }
    assert_eq!(a.fingerprints(), b.fingerprints(), "{task:?}: fingerprints");
}

#[test]
fn narrow_vs_wide_bit_identity_across_all_tasks() {
    for spec in specs() {
        let ups = workload(&spec, 0, 160);
        let (head, tail) = ups.split_at(ups.len() / 2);

        // Absorb.
        let mut narrow = spec.build();
        let mut wide = widened(&spec);
        narrow.absorb(&ups);
        wide.absorb(&ups);
        assert_identical(spec.task, &narrow, &wide);
        assert!(
            LinearSketch::lane_overflow(&narrow).is_none()
                && LinearSketch::lane_overflow(&wide).is_none(),
            "{:?}: in-range workload must not poison",
            spec.task
        );

        // Merge of split streams.
        let mut na = spec.build();
        na.absorb(head);
        let mut nb = spec.build();
        nb.absorb(tail);
        na.merge(&nb);
        let mut wa = widened(&spec);
        wa.absorb(head);
        let mut wb = widened(&spec);
        wb.absorb(tail);
        wa.merge(&wb);
        assert_identical(spec.task, &na, &wa);
        // And both merge results equal the central sketch.
        assert_identical(spec.task, &na, &narrow);

        // Accumulate (the drain-side read kernel) agrees across widths.
        for (bn, bw) in narrow.banks().iter().zip(wide.banks()) {
            let len = bn.len();
            let (mut aw1, mut as1, mut af1) = acc_lanes(len);
            let (mut aw2, mut as2, mut af2) = acc_lanes(len);
            bn.accumulate(0..len, &mut aw1, &mut as1, &mut af1);
            bw.accumulate(0..len, &mut aw2, &mut as2, &mut af2);
            assert_eq!(aw1, aw2, "{:?}: accumulate w", spec.task);
            assert_eq!(as1, as2, "{:?}: accumulate s", spec.task);
            assert_eq!(af1, af2, "{:?}: accumulate f", spec.task);
        }

        // Drain.
        let dn = narrow.drain_dirty();
        let dw = wide.drain_dirty();
        assert_eq!(dn, dw, "{:?}: drained cell count", spec.task);
        assert_identical(spec.task, &narrow, &wide);
    }
}

fn acc_lanes(len: usize) -> (Vec<i64>, Vec<i128>, Vec<gs_field::M61>) {
    (vec![0; len], vec![0; len], vec![gs_field::M61::ZERO; len])
}

#[test]
fn simd_vs_scalar_bit_identity_across_all_tasks() {
    for spec in specs() {
        let ups = workload(&spec, 1, 160);
        let (head, tail) = ups.split_at(ups.len() / 2);

        // Everything on the scalar oracle path first.
        let (scalar_absorbed, scalar_merged, scalar_drained) = {
            let _guard = ScalarGuard::force();
            let mut s = spec.build();
            s.absorb(&ups);
            let mut a = spec.build();
            a.absorb(head);
            let mut b = spec.build();
            b.absorb(tail);
            a.merge(&b);
            let mut d = spec.build();
            d.absorb(&ups);
            let count = d.drain_dirty();
            (s, a, (d, count))
        };

        // Same workload on the live dispatch path (AVX2 on capable
        // hosts; degenerates to scalar-vs-scalar elsewhere, which still
        // checks determinism).
        let mut vector = spec.build();
        vector.absorb(&ups);
        assert_identical(spec.task, &scalar_absorbed, &vector);

        let mut va = spec.build();
        va.absorb(head);
        let mut vb = spec.build();
        vb.absorb(tail);
        va.merge(&vb);
        assert_identical(spec.task, &scalar_merged, &va);

        // Accumulate across paths on the same (vector-built) state.
        for bank in vector.banks() {
            let len = bank.len();
            let (mut aw1, mut as1, mut af1) = acc_lanes(len);
            bank.accumulate(0..len, &mut aw1, &mut as1, &mut af1);
            let (mut aw2, mut as2, mut af2) = acc_lanes(len);
            {
                let _guard = ScalarGuard::force();
                bank.accumulate(0..len, &mut aw2, &mut as2, &mut af2);
            }
            assert_eq!(aw1, aw2, "{:?}: accumulate w", spec.task);
            assert_eq!(as1, as2, "{:?}: accumulate s", spec.task);
            assert_eq!(af1, af2, "{:?}: accumulate f", spec.task);
        }

        let mut vd = spec.build();
        vd.absorb(&ups);
        let vcount = vd.drain_dirty();
        let (sd, scount) = scalar_drained;
        assert_eq!(vcount, scount, "{:?}: drained cell count", spec.task);
        assert_identical(spec.task, &sd, &vd);
    }
}

/// Adversarial counter overflow on the ingest path must poison the
/// sketch (sticky, typed) — not panic, not wrap silently into a
/// trusted answer.
#[test]
fn adversarial_overflow_poisons_instead_of_panicking() {
    for task in [SketchTask::Connectivity, SketchTask::KConnect] {
        let mut spec = SketchSpec::new(task, 16);
        spec.seed = 0xBAD;
        let mut s = spec.build();
        // Two max-magnitude deltas on the same edge wrap every touched
        // i64 `w` counter regardless of lane width.
        s.update_edge(0, 1, i64::MAX);
        s.update_edge(0, 1, i64::MAX);
        assert!(
            LinearSketch::lane_overflow(&s).is_some(),
            "{task:?}: true overflow must be detected"
        );
        // The sketch object survives: further ingest is accepted and the
        // poison mark stays sticky.
        s.update_edge(2, 3, 1);
        s.update_edge(0, 1, -1);
        assert!(
            LinearSketch::lane_overflow(&s).is_some(),
            "{task:?}: poison is sticky"
        );
    }
}

/// Builds a wide-lane twin carrying an `s` value far outside i64, with
/// no true overflow (the wide lane holds it exactly) — the adversarial
/// donor for the import-rejection tests.
fn out_of_range_donor(spec: &SketchSpec) -> AnySketch {
    let mut s = widened(spec);
    // A single huge-magnitude update: `s += index · delta` exceeds i64
    // for any cell whose decoded index is ≥ 5.
    s.update_edge(spec.n - 2, spec.n - 1, i64::MAX / 4);
    assert!(
        LinearSketch::lane_overflow(&s).is_none(),
        "donor must be clean — wide lanes hold the value exactly"
    );
    assert!(
        s.banks()
            .iter()
            .any(|b| (0..b.len()).any(|i| i64::try_from(b.s_lane().get(i)).is_err())),
        "donor must actually carry an out-of-i64-range s value"
    );
    s
}

#[test]
fn v2_import_rejects_out_of_range_narrow_values() {
    let spec = SketchSpec::new(SketchTask::Connectivity, 24);
    let donor = SketchFile::new(spec, out_of_range_donor(&spec)).unwrap();
    let bytes = donor.to_bytes();
    match SketchFile::from_bytes(&bytes) {
        Err(WireError::LaneRange { .. }) => {}
        other => panic!("expected LaneRange, got {other:?}"),
    }
}

#[test]
fn json_import_rejects_out_of_range_narrow_values() {
    let spec = SketchSpec::new(SketchTask::Connectivity, 24);
    let donor = SketchFile::new(spec, out_of_range_donor(&spec)).unwrap();
    let text = donor.to_json();
    match SketchFile::from_json(&text) {
        Err(WireError::LaneRange { .. }) => {}
        other => panic!("expected LaneRange, got {other:?}"),
    }
}

#[test]
fn delta_import_rejects_out_of_range_values_and_leaves_receiver_unchanged() {
    let spec = SketchSpec::new(SketchTask::Connectivity, 24);
    let mut donor = SketchFile::new(spec, out_of_range_donor(&spec)).unwrap();
    let delta = donor.delta_bytes();

    // Receiver with some prior in-range state.
    let mut receiver = SketchFile::new(spec, spec.build()).unwrap();
    let ups = workload(&spec, 2, 40);
    receiver.state.absorb(&ups);
    let before = receiver.to_bytes();

    match receiver.apply_delta(&delta) {
        Err(WireError::LaneRange { .. }) => {}
        other => panic!("expected LaneRange, got {other:?}"),
    }
    assert_eq!(
        receiver.to_bytes(),
        before,
        "failed delta apply must be all-or-nothing"
    );
}

/// In-range wire traffic between narrow and wide peers stays bit-exact:
/// a narrow export imports into an equal spec losslessly.
#[test]
fn narrow_wire_round_trips_stay_bit_exact_for_every_task() {
    for spec in specs() {
        let ups = workload(&spec, 3, 120);
        let mut s = spec.build();
        s.absorb(&ups);
        let file = SketchFile::new(spec, s).unwrap();
        let back = SketchFile::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(
            file.to_bytes(),
            back.to_bytes(),
            "{:?}: v2 round-trip drifted",
            spec.task
        );
        let jback = SketchFile::from_json(&file.to_json()).unwrap();
        assert_eq!(
            file.to_bytes(),
            jback.to_bytes(),
            "{:?}: JSON round-trip drifted",
            spec.task
        );
    }
}
