//! Property-based tests for the paper's algorithms: soundness invariants
//! that must hold for *every* input, not just w.h.p. accuracy claims.

use graph_sketches::{
    ForestSketch, KEdgeConnectSketch, MinCutSketch, SimpleSparsifySketch, SubgraphSketch,
};
use gs_graph::{Graph, UnionFind};
use proptest::prelude::*;

/// A random simple graph as an edge set on `n ≤ 14` vertices.
fn small_graph() -> impl Strategy<Value = Graph> {
    (5usize..14).prop_flat_map(|n| {
        prop::collection::btree_set((0..n, 0..n), 0..40)
            .prop_map(move |pairs| {
                Graph::from_edges(
                    n,
                    pairs
                        .into_iter()
                        .filter(|&(a, b)| a != b)
                        .map(|(a, b)| (a.min(b), a.max(b))),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forest_decode_is_always_sound(g in small_graph(), seed in 0u64..1000) {
        // Whatever happens probabilistically, the decoded forest never
        // contains a phantom edge or a cycle, and never *over*-connects.
        let mut s = ForestSketch::new(g.n(), seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        let f = s.decode();
        let mut uf = UnionFind::new(g.n());
        let mut truth = g.components();
        for &(u, v, _) in &f.edges {
            prop_assert!(g.has_edge(u, v), "phantom edge ({u},{v})");
            prop_assert!(uf.union(u, v), "cycle");
            prop_assert!(truth.connected(u, v));
        }
    }

    #[test]
    fn kedge_witness_is_always_a_subgraph(g in small_graph(), seed in 0u64..500, k in 1usize..5) {
        let mut s = KEdgeConnectSketch::new(g.n(), k, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        let h = s.decode_witness();
        for &(u, v, w) in h.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(w as usize <= k);
        }
        prop_assert!(h.m() <= k * (g.n().max(1) - 1));
    }

    #[test]
    fn mincut_estimate_never_below_witnessed_cut(g in small_graph(), seed in 0u64..300) {
        prop_assume!(g.m() >= 1);
        let mut s = MinCutSketch::new(g.n(), 0.5, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        if let Some(est) = s.decode() {
            // The returned side is a real cut of G; at level 0 its value
            // matches the estimate exactly, so the estimate is achievable.
            prop_assert!(est.side.iter().any(|&x| x));
            prop_assert!(est.side.iter().any(|&x| !x));
            if est.level == 0 {
                prop_assert_eq!(g.cut_value(&est.side), est.value);
            }
        }
    }

    #[test]
    fn sparsifier_support_is_always_real(g in small_graph(), seed in 0u64..300) {
        let mut s = SimpleSparsifySketch::new(g.n(), 0.75, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        let h = s.decode();
        for &(u, v, _) in h.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        // Zero cuts must stay zero: the sparsifier never bridges
        // components (Definition 4 with λ_A(G) = 0).
        let mut gc = g.components();
        for &(u, v, _) in h.edges() {
            prop_assert!(gc.connected(u, v));
        }
    }

    #[test]
    fn subgraph_samples_are_real_induced_subgraphs(g in small_graph(), seed in 0u64..300) {
        prop_assume!(g.n() >= 3);
        let mut s = SubgraphSketch::new(g.n(), 3, 0.34, seed);
        for &(u, v, _) in g.edges() {
            s.update_edge(u, v, 1);
        }
        // Every raw sample must be the exact induced-mask of *some*
        // 3-subset of G — i.e. the value is in the set of real masks.
        let mut real_masks = std::collections::BTreeSet::new();
        for a in 0..g.n() {
            for b in (a + 1)..g.n() {
                for c in (b + 1)..g.n() {
                    let m = g.induced_mask(&[a, b, c]);
                    if m != 0 {
                        real_masks.insert(m);
                    }
                }
            }
        }
        for m in s.raw_samples() {
            prop_assert!(real_masks.contains(&m), "sampled mask {m:#b} not present in G");
        }
    }

    #[test]
    fn deletion_of_everything_yields_empty_sketches(g in small_graph(), seed in 0u64..200) {
        let mut s = ForestSketch::new(g.n(), seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, -(w as i64));
        }
        let f = s.decode();
        prop_assert!(f.edges.is_empty());
        prop_assert_eq!(f.component_count(), g.n());
    }
}
