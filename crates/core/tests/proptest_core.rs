//! Property-based tests for the paper's algorithms: soundness invariants
//! that must hold for *every* input, not just w.h.p. accuracy claims.
//!
//! Inputs are generated from seeded workloads (the offline workspace
//! carries no external property-testing dependency); every case is
//! deterministic and reproducible from its loop index.
//!
//! Linearity (merge-of-split-streams == central, bit for bit) is asserted
//! for every sketch type through the generic
//! `gs_stream::distributed::linearity_holds` harness — see
//! `tests/linearity.rs` at the workspace root.

use graph_sketches::{
    ForestSketch, KEdgeConnectSketch, MinCutSketch, SimpleSparsifySketch, SubgraphSketch,
};
use gs_field::SplitMix64;
use gs_graph::{Graph, UnionFind};

const CASES: u64 = 48;

/// A pseudo-random simple graph on 5..14 vertices.
fn small_graph(case: u64) -> Graph {
    let mut rng = SplitMix64::new(case.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ 0xC04E);
    let n = 5 + rng.next_range(9) as usize;
    let pairs = rng.next_range(40) as usize;
    let mut edges = std::collections::BTreeSet::new();
    for _ in 0..pairs {
        let a = rng.next_range(n as u64) as usize;
        let b = rng.next_range(n as u64) as usize;
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    Graph::from_edges(n, edges)
}

#[test]
fn forest_decode_is_always_sound() {
    for case in 0..CASES {
        let g = small_graph(case);
        let seed = case % 1000;
        // Whatever happens probabilistically, the decoded forest never
        // contains a phantom edge or a cycle, and never *over*-connects.
        let mut s = ForestSketch::new(g.n(), seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        let f = s.decode();
        let mut uf = UnionFind::new(g.n());
        let mut truth = g.components();
        for &(u, v, _) in &f.edges {
            assert!(g.has_edge(u, v), "case {case}: phantom edge ({u},{v})");
            assert!(uf.union(u, v), "case {case}: cycle");
            assert!(truth.connected(u, v), "case {case}");
        }
    }
}

#[test]
fn kedge_witness_is_always_a_subgraph() {
    for case in 0..CASES {
        let g = small_graph(case ^ 0x100);
        let seed = case % 500;
        let k = 1 + (case as usize % 4);
        let mut s = KEdgeConnectSketch::new(g.n(), k, seed);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        let h = s.decode_witness();
        for &(u, v, w) in h.edges() {
            assert!(g.has_edge(u, v), "case {case}");
            assert!(w as usize <= k, "case {case}");
        }
        assert!(h.m() <= k * (g.n().max(1) - 1), "case {case}");
    }
}

#[test]
fn mincut_estimate_never_below_witnessed_cut() {
    for case in 0..CASES {
        let g = small_graph(case ^ 0x200);
        if g.m() < 1 {
            continue;
        }
        let mut s = MinCutSketch::new(g.n(), 0.5, case % 300);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        if let Some(est) = s.decode() {
            // The returned side is a real cut of G; at level 0 its value
            // matches the estimate exactly, so the estimate is achievable.
            assert!(est.side.iter().any(|&x| x), "case {case}");
            assert!(est.side.iter().any(|&x| !x), "case {case}");
            if est.level == 0 {
                assert_eq!(g.cut_value(&est.side), est.value, "case {case}");
            }
        }
    }
}

#[test]
fn sparsifier_support_is_always_real() {
    for case in 0..CASES {
        let g = small_graph(case ^ 0x300);
        let mut s = SimpleSparsifySketch::new(g.n(), 0.75, case % 300);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        let h = s.decode();
        for &(u, v, _) in h.edges() {
            assert!(g.has_edge(u, v), "case {case}");
        }
        // Zero cuts must stay zero: the sparsifier never bridges
        // components (Definition 4 with λ_A(G) = 0).
        let mut gc = g.components();
        for &(u, v, _) in h.edges() {
            assert!(gc.connected(u, v), "case {case}");
        }
    }
}

#[test]
fn subgraph_samples_are_real_induced_subgraphs() {
    for case in 0..CASES {
        let g = small_graph(case ^ 0x400);
        if g.n() < 3 {
            continue;
        }
        let mut s = SubgraphSketch::new(g.n(), 3, 0.34, case % 300);
        for &(u, v, _) in g.edges() {
            s.update_edge(u, v, 1);
        }
        // Every raw sample must be the exact induced-mask of *some*
        // 3-subset of G — i.e. the value is in the set of real masks.
        let mut real_masks = std::collections::BTreeSet::new();
        for a in 0..g.n() {
            for b in (a + 1)..g.n() {
                for c in (b + 1)..g.n() {
                    let m = g.induced_mask(&[a, b, c]);
                    if m != 0 {
                        real_masks.insert(m);
                    }
                }
            }
        }
        for m in s.raw_samples() {
            assert!(
                real_masks.contains(&m),
                "case {case}: sampled mask {m:#b} not present in G"
            );
        }
    }
}

#[test]
fn deletion_of_everything_yields_empty_sketches() {
    for case in 0..CASES {
        let g = small_graph(case ^ 0x500);
        let mut s = ForestSketch::new(g.n(), case % 200);
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, w as i64);
        }
        for &(u, v, w) in g.edges() {
            s.update_edge(u, v, -(w as i64));
        }
        let f = s.decode();
        assert!(f.edges.is_empty(), "case {case}");
        assert_eq!(f.component_count(), g.n(), "case {case}");
    }
}
