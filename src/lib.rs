//! Workspace facade: re-exports every crate of the graph-sketches
//! workspace so the root package can host cross-crate integration tests
//! (`tests/`) and examples (`examples/`).
//!
//! See `crates/core` (`graph_sketches`) for the algorithm library and
//! DESIGN.md for the layering.

pub use graph_sketches;
pub use gs_field;
pub use gs_graph;
pub use gs_sketch;
pub use gs_stream;
