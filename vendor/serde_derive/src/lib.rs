//! Derive macros for the vendored serde facade.
//!
//! Parses the item token stream by hand (the real `syn`/`quote` stack is
//! unavailable offline) and generates field-wise `Serialize` /
//! `Deserialize` impls against the facade's [`Value`] data model:
//!
//! * named struct   → `Map` keyed by field name
//! * tuple struct   → `Seq` in field order
//! * unit struct    → `Null`
//! * unit variant   → `Str(variant_name)`
//! * data variant   → one-entry `Map { variant_name: Seq | Map }`
//!
//! Generic items are rejected with a clear panic: the workspace derives
//! these traits only on concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives facade `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let expr = serialize_fields_expr(fields, &self_accessor(fields));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Seq(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                binds = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives facade `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let expr = deserialize_fields_expr(name, fields);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(arity) => {
                            let gets: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let s = inner.as_seq().ok_or_else(|| ::serde::Error::msg(\"expected seq for variant {vname}\"))?;\n\
                                     if s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong arity for variant {vname}\")); }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({gets}))\n\
                                 }}",
                                gets = gets.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let gets: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(inner, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                gets.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown variant {{other}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown variant {{other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::msg(\"expected enum encoding for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

/// Serialize expression for struct fields accessed through `accessors`.
fn serialize_fields_expr(fields: &Fields, accessors: &[String]) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".into(),
        Fields::Tuple(_) => {
            let items: Vec<String> = accessors
                .iter()
                .map(|a| format!("::serde::Serialize::to_value(&{a})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .zip(accessors)
                .map(|(n, a)| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&{a}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
    }
}

/// `self.x` accessor list for a struct's fields.
fn self_accessor(fields: &Fields) -> Vec<String> {
    match fields {
        Fields::Unit => Vec::new(),
        Fields::Tuple(arity) => (0..*arity).map(|i| format!("self.{i}")).collect(),
        Fields::Named(names) => names.iter().map(|n| format!("self.{n}")).collect(),
    }
}

fn deserialize_fields_expr(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(arity) => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::Error::msg(\"expected seq for {name}\"))?;\n\
                 if s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({gets}))",
                gets = gets.join(", ")
            )
        }
        Fields::Named(names) => {
            let gets: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                gets.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kw = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde facade derive does not support generic types (deriving on `{name}`)");
    }
    match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => {
                panic!("serde facade derive: unexpected token after `struct {name}`: {other:?}")
            }
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde facade derive: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde facade derive supports structs and enums, not `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        // Attribute body: `[...]` (inner attributes `#![...]` cannot occur here).
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *pos += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde facade derive: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Commas inside
/// angle brackets or groups do not terminate a field's type.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut names = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde facade derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    names
}

/// Advances past one type, stopping before a top-level `,` or end of stream.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip any explicit discriminant (`= expr`) up to the variant comma.
        while pos < tokens.len()
            && !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',')
        {
            pos += 1;
        }
        if pos < tokens.len() {
            pos += 1; // consume the comma
        }
        variants.push(Variant { name, fields });
    }
    variants
}
