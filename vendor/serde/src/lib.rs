//! Vendored serde facade for offline builds.
//!
//! This workspace builds with no network access, so the real `serde` crate
//! cannot be fetched. This crate provides the subset the workspace uses —
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums — backed
//! by a simplified self-describing data model ([`Value`]) instead of the
//! real serde's visitor architecture:
//!
//! * [`Serialize::to_value`] converts a value into a [`Value`] tree.
//! * [`Deserialize::from_value`] reconstructs a value from a [`Value`].
//! * [`Value::to_json`] / [`Value::from_json`] round-trip through JSON.
//!
//! Supported shapes (everything the workspace derives): structs with named
//! fields, tuple structs, unit structs, and enums with unit / tuple /
//! struct variants — all non-generic. The derive macro lives in
//! `serde_derive` and parses the item token stream directly (no `syn`).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the facade's data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string (also carries 128-bit integers, which JSON cannot).
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (object).
    Map(Vec<(String, Value)>),
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// A descriptive error.
    pub fn msg(s: impl Into<String>) -> Self {
        Error(s.into())
    }
}

/// Conversion into the facade data model.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the facade data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- Value

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as i64 (accepts Int/UInt/Float with integral value).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(f as i64),
            _ => None,
        }
    }

    /// Numeric view as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric view as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    let text = format!("{f}");
                    out.push_str(&text);
                    // Keep a decimal point so the value parses back as Float.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a [`Value`].
    pub fn from_json(text: &str) -> Result<Value, Error> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::msg("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // and validate it as UTF-8 once. (`"` and `\` are
                    // ASCII, so they never occur inside a multi-byte
                    // sequence; per-character validation here would make
                    // parsing quadratic in the document size.)
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(run);
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad number: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::msg(format!("bad number: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::msg(format!("bad number: {e}")))
        }
    }
}

// ------------------------------------------------- primitive impls

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

// 128-bit integers exceed JSON's number range; carry them as strings.
impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(|e| Error::msg(format!("bad i128: {e}"))),
            _ => v
                .as_i64()
                .map(i128::from)
                .ok_or_else(|| Error::msg("expected i128")),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(|e| Error::msg(format!("bad u128: {e}"))),
            _ => v
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| Error::msg("expected u128")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected float"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected float"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

// ------------------------------------------------- container impls

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::msg("expected tuple sequence"))?;
                let expected = [$($n),+].len();
                if s.len() != expected {
                    return Err(Error::msg(format!("expected {expected}-tuple, got {}", s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Reads a required named field from a struct's [`Value::Map`].
///
/// Used by generated `Deserialize` impls.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let entry = v
        .get(name)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))?;
    T::from_value(entry).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(7)),
            (
                "b".into(),
                Value::Seq(vec![Value::Int(-1), Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x \"y\"\n".into())),
            ("d".into(), Value::Float(1.5)),
        ]);
        let text = v.to_json();
        assert_eq!(Value::from_json(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Value::from_json(" { \"k\" : [ 1 , { \"x\" : null } ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_seq().unwrap().len(), 2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::from_json("1 2").is_err());
        assert!(Value::from_json("{\"a\":}").is_err());
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(
            i128::from_value(&(1i128 << 100).to_value()).unwrap(),
            1i128 << 100
        );
        let tup = (1usize, -2i64, "s".to_string());
        let v = tup.to_value();
        assert_eq!(<(usize, i64, String)>::from_value(&v).unwrap(), tup);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }
}
