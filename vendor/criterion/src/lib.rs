//! Vendored micro-benchmark harness (criterion API subset).
//!
//! The real `criterion` crate cannot be fetched in this offline workspace.
//! This stand-in implements the API surface the benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple adaptive timer: each benchmark
//! is warmed up briefly, then run until ~100 ms of samples accumulate, and
//! the mean time per iteration is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_budget: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_budget, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op: the adaptive timer ignores the requested count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Compatibility no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Compatibility no-op.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.criterion.sample_budget, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.criterion.sample_budget, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle given to the benchmark closure.
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    pub mean_ns: f64,
}

impl Bencher {
    /// Times `f`, first warming up, then sampling until the time budget is
    /// spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        black_box(f());
        let mut per_iter = warm_start.elapsed().max(Duration::from_nanos(1));
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.budget {
            // Batch enough iterations to amortize timer overhead.
            let batch = (self.budget.as_nanos() / (20 * per_iter.as_nanos().max(1)))
                .clamp(1, 1_000_000) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            iters += batch;
            per_iter = (elapsed / batch as u32).max(Duration::from_nanos(1));
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn run_one(label: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("{label:<48} (no measurement)");
    } else if b.mean_ns >= 1e6 {
        println!("{label:<48} {:>12.3} ms/iter", b.mean_ns / 1e6);
    } else if b.mean_ns >= 1e3 {
        println!("{label:<48} {:>12.3} us/iter", b.mean_ns / 1e3);
    } else {
        println!("{label:<48} {:>12.1} ns/iter", b.mean_ns);
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
